// Unit tests for the discrete-event simulation kernel — the SystemC-replacing
// substrate. These validate exactly the semantics the architecture models
// rely on: deterministic ordering, delta-style event notification, FIFO
// resource handoff, and clock arithmetic.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/kernel.h"
#include "telemetry/telemetry.h"

namespace pim::sim {
namespace {

TEST(Kernel, CallbacksRunInTimeOrder) {
  Kernel k;
  std::vector<int> order;
  k.call_at(30, [&] { order.push_back(3); });
  k.call_at(10, [&] { order.push_back(1); });
  k.call_at(20, [&] { order.push_back(2); });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(k.now(), 30u);
  EXPECT_EQ(k.events_executed(), 3u);
}

TEST(Kernel, SameTimeEventsKeepScheduleOrder) {
  Kernel k;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    k.call_at(5, [&order, i] { order.push_back(i); });
  }
  k.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Kernel, RunUntilStopsBeforeBoundary) {
  Kernel k;
  int fired = 0;
  k.call_at(10, [&] { ++fired; });
  k.call_at(20, [&] { ++fired; });
  k.run(/*until=*/15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(k.now(), 15u);  // advanced to the boundary
  k.run();
  EXPECT_EQ(fired, 2);
}

TEST(Kernel, RunUntilClampingSemantics) {
  Kernel k;
  int fired = 0;
  // `until` is an exclusive bound: an event exactly at the boundary must not
  // fire, but now() still advances to the boundary.
  k.call_at(10, [&] { ++fired; });
  k.run(/*until=*/10);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(k.now(), 10u);
  EXPECT_FALSE(k.empty());
  // A second bounded run from the boundary fires it (t < until now holds).
  k.run(/*until=*/11);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(k.now(), 11u);
  EXPECT_TRUE(k.empty());
  // Draining run with the default bound does not clamp now() to kTimeMax.
  k.run();
  EXPECT_EQ(k.now(), 11u);
  // An empty bounded run still advances the clock to the boundary.
  k.run(/*until=*/50);
  EXPECT_EQ(k.now(), 50u);
  // `until` in the past is a no-op: time never moves backwards.
  k.run(/*until=*/20);
  EXPECT_EQ(k.now(), 50u);
}

TEST(Kernel, StepThenRunKeepsScheduleOrder) {
  // A bare step() can advance time while same-time events are still queued;
  // a subsequent run() must fire the leftovers before anything scheduled
  // from within the stepped event.
  Kernel k;
  std::vector<int> order;
  k.call_at(5, [&] {
    order.push_back(0);
    k.call_at(5, [&] { order.push_back(2); });  // same time, later schedule
  });
  k.call_at(5, [&] { order.push_back(1); });
  EXPECT_TRUE(k.step());
  EXPECT_EQ(k.now(), 5u);
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Kernel, StepExecutesOneEvent) {
  Kernel k;
  int fired = 0;
  k.call_at(1, [&] { ++fired; });
  k.call_at(2, [&] { ++fired; });
  EXPECT_TRUE(k.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(k.step());
  EXPECT_FALSE(k.step());
  EXPECT_EQ(fired, 2);
}

Process delayer(Kernel& k, std::vector<Time>& log, Time d1, Time d2) {
  co_await k.delay(d1);
  log.push_back(k.now());
  co_await k.delay(d2);
  log.push_back(k.now());
}

TEST(Process, DelaysAdvanceTime) {
  Kernel k;
  std::vector<Time> log;
  k.spawn(delayer(k, log, 5, 7));
  k.run();
  EXPECT_EQ(log, (std::vector<Time>{5, 12}));
  EXPECT_EQ(k.live_process_count(), 0u);
}

Process waiter(Event& e, std::vector<int>& log, int id) {
  co_await e;
  log.push_back(id);
}

Process notifier(Kernel& k, Event& e, Time at) {
  co_await k.delay(at);
  e.notify();
}

TEST(Event, WakesAllWaitersInOrder) {
  Kernel k;
  Event e(k);
  std::vector<int> log;
  k.spawn(waiter(e, log, 1));
  k.spawn(waiter(e, log, 2));
  k.spawn(waiter(e, log, 3));
  k.spawn(notifier(k, e, 10));
  k.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(k.now(), 10u);
}

TEST(Event, AutoResetLateWaitersWaitForNextNotify) {
  Kernel k;
  Event e(k);
  std::vector<int> log;
  k.spawn(waiter(e, log, 1));
  k.spawn(notifier(k, e, 10));
  k.run();
  EXPECT_EQ(log, (std::vector<int>{1}));
  // A waiter arriving after the notify must block until another notify.
  k.spawn(waiter(e, log, 2));
  k.run();
  EXPECT_EQ(log, (std::vector<int>{1}));
  EXPECT_EQ(e.waiter_count(), 1u);
  e.notify();
  k.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

Process hold_resource(Kernel& k, Resource& r, std::vector<std::pair<int, Time>>& log, int id,
                      Time hold) {
  co_await r.acquire();
  log.push_back({id, k.now()});
  co_await k.delay(hold);
  r.release();
}

TEST(Resource, SerializesFifo) {
  Kernel k;
  Resource r(k, 1);
  std::vector<std::pair<int, Time>> log;
  k.spawn(hold_resource(k, r, log, 1, 10));
  k.spawn(hold_resource(k, r, log, 2, 10));
  k.spawn(hold_resource(k, r, log, 3, 10));
  k.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], (std::pair<int, Time>{1, 0}));
  EXPECT_EQ(log[1], (std::pair<int, Time>{2, 10}));
  EXPECT_EQ(log[2], (std::pair<int, Time>{3, 20}));
}

TEST(Resource, CountingAdmitsUpToCapacity) {
  Kernel k;
  Resource r(k, 2);
  std::vector<std::pair<int, Time>> log;
  for (int i = 0; i < 4; ++i) k.spawn(hold_resource(k, r, log, i, 10));
  k.run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0].second, 0u);
  EXPECT_EQ(log[1].second, 0u);
  EXPECT_EQ(log[2].second, 10u);
  EXPECT_EQ(log[3].second, 10u);
  EXPECT_EQ(r.available(), 2u);
}

Process scoped_user(Kernel& k, Resource& r, Time hold) {
  auto lease = co_await r.scoped();
  co_await k.delay(hold);
  // lease releases at scope exit
}

TEST(Resource, ScopedLeaseReleases) {
  Kernel k;
  Resource r(k, 1);
  k.spawn(scoped_user(k, r, 5));
  k.spawn(scoped_user(k, r, 5));
  k.run();
  EXPECT_EQ(k.now(), 10u);
  EXPECT_EQ(r.available(), 1u);
  EXPECT_FALSE(r.busy());
}

TEST(Clock, CycleArithmetic) {
  Kernel k;
  Clock c(k, 1000.0);  // 1 GHz -> 1000 ps period
  EXPECT_EQ(c.period_ps(), 1000u);
  EXPECT_EQ(c.to_ps(5), 5000u);
  Clock c2(k, 500.0);  // 500 MHz -> 2000 ps
  EXPECT_EQ(c2.period_ps(), 2000u);
}

Process edge_waiter(Kernel& k, Clock& c, std::vector<Time>& log) {
  co_await k.delay(1500);       // mid-cycle
  co_await c.next_edge();       // align to 2000
  log.push_back(k.now());
  co_await c.next_edge();       // 3000? period 1000: next edge after 2000 is 3000
  log.push_back(k.now());
}

TEST(Clock, NextEdgeAligns) {
  Kernel k;
  Clock c(k, 1000.0);
  std::vector<Time> log;
  k.spawn(edge_waiter(k, c, log));
  k.run();
  EXPECT_EQ(log, (std::vector<Time>{2000, 3000}));
}

TEST(Kernel, DestructorReclaimsBlockedProcesses) {
  // A process left waiting on an event that never fires must be destroyed
  // with the kernel (no leak, no crash).
  auto k = std::make_unique<Kernel>();
  Event e(*k);
  std::vector<int> log;
  k->spawn(waiter(e, log, 1));
  k->run();
  EXPECT_EQ(k->live_process_count(), 1u);
  k.reset();  // must destroy the suspended frame
  EXPECT_TRUE(log.empty());
}

TEST(Kernel, DestructionWithLeaseHoldersAndQueuedWaitersIsSafe) {
  // Teardown order regression: spawn order puts the queued waiter at the
  // head of the live list, so its frame is destroyed *before* the lease
  // holder's. The holder's ~Lease then calls Resource::release(), which must
  // not dereference the (already freed) waiter's promise.
  auto k = std::make_unique<Kernel>();
  Resource r(*k, 1);
  std::vector<std::pair<int, Time>> log;
  k->spawn(scoped_user(*k, r, /*hold=*/1000));          // acquires at t=0
  k->spawn(hold_resource(*k, r, log, 7, 5));            // queued behind it
  k->run(/*until=*/10);
  EXPECT_EQ(r.queue_length(), 1u);
  EXPECT_EQ(k->live_process_count(), 2u);
  k.reset();  // must neither crash nor touch freed frames
  EXPECT_TRUE(log.empty());
}

TEST(Kernel, DeterministicAcrossRuns) {
  auto run_once = [] {
    Kernel k;
    Resource r(k, 2);
    Event e(k);
    std::vector<std::pair<int, Time>> log;
    for (int i = 0; i < 5; ++i) k.spawn(hold_resource(k, r, log, i, 3 + i));
    k.spawn(notifier(k, e, 4));
    k.run();
    return std::make_pair(log, k.events_executed());
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

Process rewaiter(Event& e, std::vector<int>& log, int id) {
  co_await e;
  log.push_back(id);
  co_await e;  // re-arms during the wake delta: must need a *second* notify
  log.push_back(100 + id);
}

TEST(Event, WaiterArrivingDuringNotifyWaitsForNextOne) {
  // Auto-reset: a process woken by notify() that immediately re-awaits the
  // same event must not be woken by that same notification.
  Kernel k;
  Event e(k);
  std::vector<int> log;
  k.spawn(rewaiter(e, log, 1));
  k.spawn(rewaiter(e, log, 2));
  k.run();
  e.notify();
  k.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.waiter_count(), 2u);
  e.notify();
  k.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 101, 102}));
  EXPECT_EQ(e.waiter_count(), 0u);
}

Process observe_handoff(Kernel& k, Resource& r, std::vector<uint32_t>& avail, Time hold) {
  co_await r.acquire();
  avail.push_back(r.available());
  co_await k.delay(hold);
  r.release();
}

TEST(Resource, ReleaseHandsOffDirectlyKeepingZeroAvailable) {
  // With waiters queued, release() bypasses available_: the unit transfers
  // to the front waiter and the count observed by every holder stays 0.
  Kernel k;
  Resource r(k, 1);
  std::vector<uint32_t> avail;
  for (int i = 0; i < 3; ++i) k.spawn(observe_handoff(k, r, avail, 10));
  k.run(/*until=*/15);
  // Second holder admitted via direct hand-off at t=10: still zero available.
  EXPECT_EQ(avail, (std::vector<uint32_t>{0, 0}));
  EXPECT_TRUE(r.busy());
  EXPECT_EQ(r.queue_length(), 1u);
  k.run();
  EXPECT_EQ(avail, (std::vector<uint32_t>{0, 0, 0}));
  EXPECT_EQ(r.available(), 1u);  // last release finds no waiters -> refill
}

// --------------------------------------------------------------- fingerprint

Process fp_worker(Kernel& k, Resource& r, Event& e, std::vector<int>& log, int id) {
  co_await k.delay(static_cast<Time>(id) * 3);
  co_await r.acquire();
  log.push_back(id);
  co_await k.delay(5 + static_cast<Time>(id % 4));
  r.release();
  if (id % 2 == 0) {
    co_await e;
    log.push_back(100 + id);
  }
}

Process fp_notifier(Kernel& k, Event& e) {
  for (int round = 0; round < 4; ++round) {
    co_await k.delay(11);
    e.notify();
  }
}

Process fp_child(std::vector<int>& log, int id) {
  log.push_back(200 + id);
  co_return;
}

Process fp_parent(Kernel& k, std::vector<int>& log) {
  for (int i = 0; i < 3; ++i) {
    k.spawn(fp_child(log, i));
    co_await k.delay(2);
  }
}

// Deterministic mix of every scheduling path: same-delta notify/release and
// nested spawn, future-time delays, plain callbacks, FIFO resource handoff.
uint64_t reference_fingerprint(std::vector<int>* order = nullptr,
                               telemetry::TraceSink* sink = nullptr) {
  Kernel k;
  Resource r(k, 2);
  Event e(k);
  if (sink != nullptr) {
    k.set_trace(sink);
    const uint32_t pid = sink->pid("kernel");
    r.attach_trace(sink->tid(pid, "resource"));
    e.attach_trace(sink->tid(pid, "event"));
  }
  std::vector<int> log;
  for (int id = 0; id < 8; ++id) k.spawn(fp_worker(k, r, e, log, id));
  k.spawn(fp_notifier(k, e));
  k.spawn(fp_parent(k, log));
  k.call_at(7, [&] { log.push_back(300); });
  k.call_at(7, [&] { log.push_back(301); });
  k.run();
  if (order != nullptr) *order = log;
  return k.order_fingerprint();
}

TEST(Kernel, OrderFingerprintMatchesPreRefactorKernel) {
  // Golden value recorded from the pre-refactor single-heap scheduler (the
  // same FNV-1a over the (time, seq) firing stream, added to it verbatim
  // before the two-tier rewrite). Equality proves the rewrite preserves the
  // exact global event order, not just the end state. If this fails, the
  // scheduler reordered events — that is a correctness regression, never an
  // acceptable side effect of an optimization.
  std::vector<int> log;
  EXPECT_EQ(reference_fingerprint(&log), 0xb1da6631ea84033bull);
  EXPECT_EQ(log, (std::vector<int>{0, 200, 201, 1, 202, 2, 300, 301, 3, 100, 4, 5, 6, 102,
                                   104, 7, 106}));
}

TEST(Kernel, OrderFingerprintDeterministicAcrossRuns) {
  EXPECT_EQ(reference_fingerprint(), reference_fingerprint());
}

TEST(Kernel, OrderFingerprintUnchangedWithTracingAttached) {
  // Telemetry is pure observation: attaching a TraceSink to the kernel and
  // to the contended resource/event must not perturb the global event order.
  // Same golden as OrderFingerprintMatchesPreRefactorKernel, tracing on.
  telemetry::TraceSink sink;
  std::vector<int> traced_log, plain_log;
  EXPECT_EQ(reference_fingerprint(&traced_log, &sink), 0xb1da6631ea84033bull);
  EXPECT_EQ(reference_fingerprint(&plain_log), 0xb1da6631ea84033bull);
  EXPECT_EQ(traced_log, plain_log);
  // The contended resource queue and the event notifies were recorded.
  EXPECT_GT(sink.event_count(), 0u);
}

TEST(Kernel, OrderFingerprintSensitiveToOrder) {
  // Swapping two same-time callbacks changes only their schedule order; the
  // fingerprint must see it.
  auto fp = [](bool swapped) {
    Kernel k;
    int a = 0, b = 0;
    if (swapped) {
      k.call_at(5, [&] { b = 1; });
      k.call_at(5, [&] { a = 1; });
    } else {
      k.call_at(5, [&] { a = 1; });
      k.call_at(5, [&] { b = 1; });
    }
    k.call_at(9, [] {});
    k.run();
    return k.order_fingerprint();
  };
  EXPECT_EQ(fp(false), fp(false));
  // Same-time swap keeps the (time, seq) stream identical — the fingerprint
  // tracks the schedule, so this *stays equal*; what must differ is a
  // different schedule shape.
  Kernel k;
  k.call_at(5, [] {});
  k.call_at(9, [] {});
  k.run();
  EXPECT_NE(fp(false), k.order_fingerprint());
}

TEST(Clock, RejectsNonPositiveFrequency) {
  Kernel k;
  EXPECT_THROW(Clock(k, 0.0), std::invalid_argument);
  EXPECT_THROW(Clock(k, -1000.0), std::invalid_argument);
  // Above 1 THz the period quantizes to the 1 ps floor instead of 0.
  Clock thz(k, 5e6);  // 5 THz
  EXPECT_EQ(thz.period_ps(), 1u);
}

TEST(Clock, ToPsSaturatesInsteadOfWrapping) {
  // Regression: cycles * period_ps used to wrap on 64-bit overflow, turning
  // a huge-but-legal cycle count into a *small* delay that silently
  // reordered the event queue. It must clamp to kTimeMax instead.
  Kernel k;
  Clock slow(k, 1.0);  // 1 MHz -> 1'000'000 ps period
  EXPECT_EQ(slow.period_ps(), 1'000'000u);
  EXPECT_EQ(slow.to_ps(5), 5'000'000u);                        // exact well below the edge
  EXPECT_EQ(slow.to_ps(UINT64_MAX), kTimeMax);                 // total overflow
  EXPECT_EQ(slow.to_ps(UINT64_MAX / 1'000'000 + 1), kTimeMax); // just past the edge
  EXPECT_EQ(slow.to_ps(UINT64_MAX / 1'000'000),                // largest exact product
            (UINT64_MAX / 1'000'000) * 1'000'000u);
  // A 1 ps period never overflows: identity mapping across the full range.
  Clock thz(k, 5e6);
  EXPECT_EQ(thz.to_ps(UINT64_MAX), UINT64_MAX);
}

Process spawner_child(std::vector<int>& log, int id) {
  log.push_back(id);
  co_return;
}

Process spawner_parent(Kernel& k, std::vector<int>& log) {
  log.push_back(0);
  k.spawn(spawner_child(log, 1));
  co_await k.delay(1);
  log.push_back(2);
}

TEST(Process, NestedSpawnRunsAtCurrentTime) {
  Kernel k;
  std::vector<int> log;
  k.spawn(spawner_parent(k, log));
  k.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2}));
}

// Property-style sweep: N contenders on capacity-C resources always serialize
// into ceil(N/C) waves of the hold time.
class ResourceWaveTest : public ::testing::TestWithParam<std::pair<int, uint32_t>> {};

TEST_P(ResourceWaveTest, WaveTiming) {
  const auto [n, cap] = GetParam();
  Kernel k;
  Resource r(k, cap);
  std::vector<std::pair<int, Time>> log;
  for (int i = 0; i < n; ++i) k.spawn(hold_resource(k, r, log, i, 7));
  k.run();
  ASSERT_EQ(log.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Time expected_wave = static_cast<Time>(i / static_cast<int>(cap)) * 7;
    EXPECT_EQ(log[static_cast<size_t>(i)].second, expected_wave) << "contender " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Waves, ResourceWaveTest,
                         ::testing::Values(std::pair<int, uint32_t>{1, 1},
                                           std::pair<int, uint32_t>{8, 1},
                                           std::pair<int, uint32_t>{8, 2},
                                           std::pair<int, uint32_t>{9, 4},
                                           std::pair<int, uint32_t>{16, 16}));

// --------------------------------------------------------------- timer wheel
//
// The hierarchical wheel tier must be scheduling-invisible: every test below
// runs the same scenario on a default kernel (wheel on) and on a
// Tuning{.timer_wheel = false} reference kernel (every future event through
// the binary heap) and requires identical firing order via
// order_fingerprint(), identical clocks, and identical event counts.

Kernel::Tuning heap_only() {
  Kernel::Tuning t;
  t.timer_wheel = false;
  return t;
}

// Run `scenario` on both schedulers and assert observable identity.
template <typename Scenario>
void expect_wheel_matches_heap(Scenario&& scenario) {
  Kernel wheel;
  Kernel heap(heap_only());
  scenario(wheel);
  scenario(heap);
  EXPECT_EQ(wheel.order_fingerprint(), heap.order_fingerprint());
  EXPECT_EQ(wheel.now(), heap.now());
  EXPECT_EQ(wheel.events_executed(), heap.events_executed());
  EXPECT_EQ(wheel.empty(), heap.empty());
}

TEST(TimerWheel, LevelHorizonBoundaryDeltas) {
  // Deltas straddling every level boundary (64^k - 1, 64^k, 64^k + 1) plus
  // the wheel horizon itself (2^30): the placement rule must agree with the
  // heap reference at exactly the points where the level index changes.
  expect_wheel_matches_heap([](Kernel& k) {
    std::vector<Time> fired;
    for (uint32_t level = 1; level <= 5; ++level) {
      const Time edge = Time{1} << (6 * level);
      for (Time d : {edge - 1, edge, edge + 1}) {
        k.call_at(d, [&fired, &k] { fired.push_back(k.now()); });
      }
    }
    k.call_at((Time{1} << 30) - 1, [] {});  // last in-horizon time from t=0
    k.call_at(Time{1} << 30, [] {});        // first beyond-horizon time
    k.run();
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  });
}

TEST(TimerWheel, SameTimeAcrossTiersFiresInScheduleOrder) {
  // Three events at one timestamp, posted from three different distances:
  // beyond-horizon (heap), in-horizon (wheel), and at-time (ring, posted by
  // an event firing at t). Global (time, seq) order must hold across tiers.
  expect_wheel_matches_heap([](Kernel& k) {
    std::vector<int> order;
    const Time t = (Time{1} << 30) + 100;  // beyond horizon as seen from 0
    k.call_at(t, [&order] { order.push_back(0); });  // heap tier
    k.call_at(t - 50, [&k, &order, t] {
      k.call_at(t, [&order] { order.push_back(1); });  // wheel tier (50 away)
      k.call_at(t, [&k, &order] {                      // wheel tier, later seq
        order.push_back(2);
        k.call_at(k.now(), [&order] { order.push_back(3); });  // ring tier
      });
    });
    k.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  });
}

TEST(TimerWheel, TimeMaxClampSemantics) {
  // An event parked at kTimeMax: a default (draining) run() must leave it
  // unfired — until is exclusive and never clamps to kTimeMax — while step()
  // does fire it. Exercised near the top of the time range so the wheel
  // kernel actually holds it in a wheel slot, not the heap.
  expect_wheel_matches_heap([](Kernel& k) {
    const Time high = kTimeMax - (Time{1} << 20);
    k.run(/*until=*/high);  // park now() deep enough that kTimeMax is in-horizon
    EXPECT_EQ(k.now(), high);
    int fired = 0;
    k.call_at(kTimeMax, [&fired] { ++fired; });
    k.run();
    EXPECT_EQ(fired, 0);
    EXPECT_FALSE(k.empty());
    EXPECT_TRUE(k.step());
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(k.now(), kTimeMax);
    EXPECT_TRUE(k.empty());
  });
}

TEST(TimerWheel, CascadeAtWheelWrap) {
  // Drive now() to just below a high-level slot boundary, then schedule
  // across it: the events land in upper-level slots whose low-level slot
  // indices wrap past zero, and firing them requires a cascade right at the
  // wrap point.
  expect_wheel_matches_heap([](Kernel& k) {
    std::vector<Time> fired;
    auto record = [&fired, &k] { fired.push_back(k.now()); };
    // Just below the first level-2 boundary (64^2), then spill across it.
    k.call_at((64 * 64) - 3, [&] {
      for (Time d : {Time{1}, Time{2}, Time{5}, Time{64}, Time{64 * 64}}) {
        k.call_at(k.now() + d, record);
      }
    });
    // Same dance at a level-3 boundary reached via an until-clamp.
    k.run(/*until=*/(Time{64} * 64 * 64) - 1);
    for (Time d : {Time{1}, Time{2}, Time{63}, Time{64}, Time{4096}}) {
      k.call_at(k.now() + d, record);
    }
    k.run();
    EXPECT_EQ(fired.size(), 10u);
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  });
}

TEST(TimerWheel, BoundedRunClampParksInsideSlotWindow) {
  // run(until) with until inside an occupied upper-level slot's window: the
  // clamp leaves now() at until with the entry still parked (its slot index
  // now *equals* the current index at that level — the one place equality is
  // legal), and the next run must still fire it at the right time.
  expect_wheel_matches_heap([](Kernel& k) {
    int fired = 0;
    k.call_at(64 * 7 + 13, [&fired] { ++fired; });  // level-1 slot from t=0
    k.run(/*until=*/64 * 7 + 2);                    // clamp into the slot's window
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(k.now(), Time{64 * 7 + 2});
    k.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(k.now(), Time{64 * 7 + 13});
  });
}

Process parked_sleeper(Kernel& k, Time delta) {
  co_await k.delay(delta);
}

TEST(TimerWheel, TeardownWithParkedWheelEntriesIsClean) {
  // Destroying a kernel with coroutine frames parked in wheel buckets (and
  // callbacks parked in fn slots) must reclaim every frame — the sanitizer
  // jobs run this under ASan/LSan, so a leaked frame or a double free fails.
  auto k = std::make_unique<Kernel>();
  for (Time d : {Time{3}, Time{70}, Time{5000}, Time{1} << 20, Time{1} << 31}) {
    k->spawn(parked_sleeper(*k, d));
    k->call_at(k->now() + d + 1, [] {});
  }
  k->run(/*until=*/2);  // everything still parked across all tiers
  EXPECT_EQ(k->live_process_count(), 5u);
  EXPECT_FALSE(k->empty());
  k.reset();
}

// Counter-based hash: deterministic per (actor, step), independent of
// execution interleaving, so both kernels see byte-identical schedules.
uint64_t fuzz_mix(uint64_t a, uint64_t b) {
  uint64_t x = a * 0x9e3779b97f4a7c15ull + b + 0x7f4a7c15ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

// Self-rescheduling actor: fires `steps` times with hashed deltas spanning
// every tier (same-time, all wheel levels, beyond-horizon heap fallback).
void fuzz_actor(Kernel& k, uint64_t seed, int id, int step, int steps) {
  if (step >= steps) return;
  const uint64_t h = fuzz_mix(seed ^ static_cast<uint64_t>(id), static_cast<uint64_t>(step));
  Time delta;
  switch (h % 8) {
    case 0: delta = 0; break;                           // ring (at-now)
    case 1: delta = 1 + (h >> 8) % 63; break;           // wheel level 0
    case 2: delta = 64 + (h >> 8) % 4032; break;        // level 1
    case 3: delta = 4096 + (h >> 8) % 258048; break;    // level 2
    case 4: delta = (h >> 8) % (Time{1} << 24); break;  // levels 3-4
    case 5: delta = (Time{1} << 30) + (h >> 8) % (Time{1} << 31); break;  // heap
    default: delta = (h >> 8) % 200; break;             // clustered collisions
  }
  k.call_at(k.now() + delta, [&k, seed, id, step, steps] {
    fuzz_actor(k, seed, id, step + 1, steps);
  });
}

TEST(TimerWheel, DifferentialOrderFuzzMatchesHeapReference) {
  // Random event streams on the wheel kernel vs the pure-heap reference:
  // order_fingerprint() hashes every (time, seq) fired, so the comparison
  // proves order identity — any divergence also derails the actors' shared
  // schedule and shows up as differing clocks/counts. Mixed run(until)
  // segments and bare step()s hit the clamp and single-step paths too.
  for (uint64_t seed : {0xdecaf0ull, 0xbadc0ffeeull, 0x5eed5ull}) {
    expect_wheel_matches_heap([seed](Kernel& k) {
      for (int id = 0; id < 12; ++id) fuzz_actor(k, seed, id, 0, 40);
      Time until = 0;
      for (int segment = 0; segment < 6; ++segment) {
        until += 1 + fuzz_mix(seed, 1000 + static_cast<uint64_t>(segment)) % (Time{1} << 28);
        k.run(until);
        for (int s = 0; s < 3; ++s) k.step();
      }
      k.run();
    });
  }
}

}  // namespace
}  // namespace pim::sim
