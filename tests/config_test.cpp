// Unit tests for the architecture configuration module.
#include <gtest/gtest.h>

#include <filesystem>

#include "config/arch_config.h"

namespace pim::config {
namespace {

TEST(ArchConfig, DefaultsValidate) {
  ArchConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ArchConfig, PresetsValidate) {
  EXPECT_NO_THROW(ArchConfig::paper_default().validate());
  EXPECT_NO_THROW(ArchConfig::mnsim_like().validate());
  EXPECT_NO_THROW(ArchConfig::tiny().validate());
}

TEST(ArchConfig, PaperDefaultMatchesSection4A) {
  ArchConfig cfg = ArchConfig::paper_default();
  EXPECT_EQ(cfg.core_count, 64u);
  EXPECT_EQ(cfg.core.matrix.xbar_count, 512u);
  EXPECT_EQ(cfg.core.matrix.xbar.rows, 128u);
  EXPECT_EQ(cfg.core.matrix.xbar.cols, 128u);
  EXPECT_EQ(cfg.mesh_width * cfg.mesh_height, cfg.core_count);
  EXPECT_EQ(cfg.total_xbars(), 64u * 512u);
}

TEST(ArchConfig, PhasesFormula) {
  XbarConfig x;
  x.weight_bits = 8;
  x.cell_bits = 2;
  x.input_bits = 8;
  x.dac_bits = 1;
  EXPECT_EQ(x.phases(), 4u * 8u);
  x.cell_bits = 8;
  x.dac_bits = 8;
  EXPECT_EQ(x.phases(), 1u);
  x.cell_bits = 3;  // ceil(8/3) = 3
  EXPECT_EQ(x.phases(), 3u * 1u);
}

TEST(ArchConfig, ValidationCatchesMeshMismatch) {
  ArchConfig cfg;
  cfg.core_count = 10;
  cfg.mesh_width = 3;
  cfg.mesh_height = 3;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ArchConfig, ValidationCatchesBadUnits) {
  ArchConfig cfg;
  cfg.core.rob_size = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = ArchConfig();
  cfg.core.matrix.adc_count = cfg.core.matrix.xbar_count + 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = ArchConfig();
  cfg.core.matrix.xbar.cell_bits = 9;  // > weight_bits
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = ArchConfig();
  cfg.noc.link_bytes_per_cycle = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = ArchConfig();
  cfg.core.local_memory.bytes_per_cycle = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ArchConfig, JsonRoundTripPreservesEverything) {
  ArchConfig cfg = ArchConfig::paper_default();
  cfg.core.rob_size = 12;
  cfg.core.matrix.xbar.read_energy_pj = 4.5;
  cfg.noc.hop_latency_cycles = 3;
  cfg.sim.trace_file = "trace.log";
  cfg.sim.functional = false;
  ArchConfig back = ArchConfig::from_json(cfg.to_json());
  EXPECT_EQ(back.core.rob_size, 12u);
  EXPECT_DOUBLE_EQ(back.core.matrix.xbar.read_energy_pj, 4.5);
  EXPECT_EQ(back.noc.hop_latency_cycles, 3u);
  EXPECT_EQ(back.sim.trace_file, "trace.log");
  EXPECT_FALSE(back.sim.functional);
  EXPECT_EQ(back.to_json(), cfg.to_json());
}

TEST(ArchConfig, MaxTimeIsPicosecondGranularWithMsAlias) {
  // Canonical key.
  ArchConfig ps = ArchConfig::from_json(json::parse(R"({"sim": {"max_time_ps": 2500}})"));
  EXPECT_EQ(ps.sim.max_time_ps, 2500u);
  // Legacy "max_time_ms" parses as an alias, converted to picoseconds...
  ArchConfig ms = ArchConfig::from_json(json::parse(R"({"sim": {"max_time_ms": 3}})"));
  EXPECT_EQ(ms.sim.max_time_ps, 3'000'000'000ull);
  // ...saturating instead of wrapping on absurd budgets...
  ArchConfig huge = ArchConfig::from_json(
      json::parse(R"({"sim": {"max_time_ms": 92233720368547758}})"));
  EXPECT_EQ(huge.sim.max_time_ps, UINT64_MAX);
  // ...and an explicit ps value wins over the alias.
  ArchConfig both = ArchConfig::from_json(
      json::parse(R"({"sim": {"max_time_ps": 7, "max_time_ms": 3}})"));
  EXPECT_EQ(both.sim.max_time_ps, 7u);
  // The round-trip stays lossless: to_json writes the canonical key only.
  EXPECT_EQ(ArchConfig::from_json(ms.to_json()).sim.max_time_ps, ms.sim.max_time_ps);
  EXPECT_FALSE(ms.to_json().at("sim").contains("max_time_ms"));
}

TEST(ArchConfig, JsonPartialOverridesKeepDefaults) {
  json::Value v = json::parse(R"({"core_count": 16, "core": {"rob_size": 4}})");
  ArchConfig cfg = ArchConfig::from_json(v);
  EXPECT_EQ(cfg.core_count, 16u);
  EXPECT_EQ(cfg.core.rob_size, 4u);
  // Untouched fields keep defaults.
  EXPECT_EQ(cfg.core.matrix.xbar.rows, ArchConfig().core.matrix.xbar.rows);
}

TEST(ArchConfig, MeshDerivedWhenOmitted) {
  ArchConfig cfg = ArchConfig::from_json(json::parse(R"({"core_count": 12})"));
  EXPECT_EQ(cfg.mesh_width * cfg.mesh_height, 12u);
  // Squarest factorization of 12 is 4x3.
  EXPECT_EQ(std::min(cfg.mesh_width, cfg.mesh_height), 3u);
}

TEST(ArchConfig, SaveLoadFile) {
  const std::string path = std::filesystem::temp_directory_path() / "pim_cfg_test.json";
  ArchConfig cfg = ArchConfig::mnsim_like();
  cfg.save(path);
  ArchConfig back = ArchConfig::load(path);
  EXPECT_EQ(back.to_json(), cfg.to_json());
  std::filesystem::remove(path);
}

TEST(ArchConfig, FromJsonValidates) {
  EXPECT_THROW(ArchConfig::from_json(json::parse(R"({"core_count": 0})")),
               std::invalid_argument);
}

}  // namespace
}  // namespace pim::config
