// NSGA-II internals as pure functions (non-dominated sort, crowding
// distance, crowded-comparison tournaments) and the declarative
// "constraints" block: parsing, adversarial rejection, constraint-aware
// sampling, and the frontier-quality contract of the nsga2 sampler vs the
// evolve hill climb on a seeded synthetic space.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <set>

#include "dse/explorer.h"
#include "dse/pareto.h"
#include "dse/sampler.h"
#include "dse/search_space.h"

namespace pim::dse {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

SearchSpace parse_space(const char* text) {
  return SearchSpace::from_json(json::parse(text));
}

/// Synthetic space: 600 grid points, never simulated — tests evaluate it
/// with the rugged analytic objectives of synthetic_evaluate() below.
SearchSpace synthetic_space() {
  return parse_space(R"({
    "name": "synthetic",
    "base": "tiny",
    "model": "mlp",
    "knobs": {
      "adcs_per_core": [1, 2, 4, 8, 16, 32],
      "rob_size": [1, 2, 4, 8, 16],
      "noc_link_bytes": [4, 8, 16, 32, 64],
      "batch": [1, 2, 3, 4]
    },
    "objectives": ["latency_ms", "energy_uj"]
  })");
}

/// Index of `p`'s value in `knob`'s ordered domain.
size_t knob_index(const SearchSpace& s, const char* knob, const Point& p) {
  const Knob* k = s.find_knob(knob);
  for (size_t i = 0; i < k->values.size(); ++i) {
    if (k->values[i] == p.at(knob)) return i;
  }
  return 0;
}

/// Deterministic analytic objectives: latency falls and energy rises in
/// every knob, so the Pareto frontier is a long trade-off curve — but the
/// parity penalty terms make the landscape *rugged*: most single-knob
/// neighbor steps flip a parity and land on a dominated shelf, the way
/// real accelerator spaces couple knobs. That ruggedness is exactly where
/// a population-based multi-objective search earns its keep over a local
/// hill climb.
EvaluatedPoint synthetic_evaluate(const SearchSpace& s, const Point& p) {
  const double a = p.at("adcs_per_core").as_double();
  const double r = p.at("rob_size").as_double();
  const double n = p.at("noc_link_bytes").as_double();
  const double b = p.at("batch").as_double();
  const size_t ai = knob_index(s, "adcs_per_core", p);
  const size_t ri = knob_index(s, "rob_size", p);
  const size_t ni = knob_index(s, "noc_link_bytes", p);
  const size_t bi = knob_index(s, "batch", p);
  EvaluatedPoint ep;
  ep.point = p;
  ep.label = point_label(p);
  ep.feasible = ep.ok = true;
  ep.metrics.latency_ms =
      100.0 / (a * std::sqrt(r)) + 50.0 / n + 10.0 / b + 25.0 * ((ai + ni) % 2);
  ep.metrics.energy_uj = 2.0 * a + 1.5 * r + 0.8 * n + 3.0 * b + 15.0 * ((ri + bi) % 2);
  return ep;
}

/// Drive one sampler for `budget` evaluations the way explore() does, but
/// against the synthetic objectives — no simulator, so the comparison
/// between samplers is pure sampler quality.
std::vector<EvaluatedPoint> run_synthetic(const SearchSpace& space, const std::string& kind,
                                          uint64_t seed, size_t budget) {
  SamplerOptions opts;
  opts.seed = seed;
  opts.population = 12;
  const auto sampler = make_sampler(kind, space, opts);
  std::vector<EvaluatedPoint> history;
  while (history.size() < budget) {
    const size_t ask = std::min(budget - history.size(), sampler->generation_size());
    const std::vector<Point> proposed = sampler->propose(ask, history);
    if (proposed.empty()) break;
    for (const Point& p : proposed) history.push_back(synthetic_evaluate(space, p));
  }
  return history;
}

size_t frontier_size(const SearchSpace& space, const std::vector<EvaluatedPoint>& pts) {
  std::vector<std::vector<double>> rows;
  for (const EvaluatedPoint& p : pts) {
    if (p.feasible && p.ok) rows.push_back(p.objective_values(space.objectives));
  }
  return pareto_frontier(rows).size();
}

// ------------------------------------------------------- non-dominated sort

TEST(NonDominatedSortTest, RanksHandBuiltFronts) {
  // Front 0: (1,5), (3,1) and the duplicate (1,5). Front 1: (2,6), (4,4).
  // Front 2: (5,7), dominated by members of both earlier fronts.
  const std::vector<std::vector<double>> rows = {
      {1.0, 5.0}, {2.0, 6.0}, {3.0, 1.0}, {4.0, 4.0}, {1.0, 5.0}, {5.0, 7.0},
  };
  EXPECT_EQ(non_dominated_ranks(rows), (std::vector<size_t>{0, 1, 0, 1, 0, 2}));
}

TEST(NonDominatedSortTest, SingleObjectiveDegeneratesToSortOrder) {
  // One objective: each distinct value is its own front, duplicates share.
  const std::vector<std::vector<double>> rows = {{3.0}, {1.0}, {2.0}, {1.0}};
  EXPECT_EQ(non_dominated_ranks(rows), (std::vector<size_t>{2, 0, 1, 0}));
}

TEST(NonDominatedSortTest, TotallyOrderedChainAndEmptyInput) {
  // A strictly dominated chain: one point per front.
  const std::vector<std::vector<double>> chain = {{4.0, 4.0}, {1.0, 1.0}, {3.0, 3.0},
                                                  {2.0, 2.0}};
  EXPECT_EQ(non_dominated_ranks(chain), (std::vector<size_t>{3, 0, 2, 1}));
  EXPECT_TRUE(non_dominated_ranks({}).empty());
  // All-duplicates: everything is rank 0.
  EXPECT_EQ(non_dominated_ranks({{2.0, 2.0}, {2.0, 2.0}}), (std::vector<size_t>{0, 0}));
  // Ranks agree with pareto_frontier on the rank-0 set.
  const std::vector<std::vector<double>> rows = {{1.0, 5.0}, {2.0, 6.0}, {3.0, 1.0}};
  const std::vector<size_t> ranks = non_dominated_ranks(rows);
  for (const size_t i : pareto_frontier(rows)) EXPECT_EQ(ranks[i], 0u);
}

// -------------------------------------------------------- crowding distance

TEST(CrowdingDistanceTest, BoundaryPointsAreInfinite) {
  // One front of four points along a line; ends get infinity, the interior
  // points the normalized span of their neighbors.
  const std::vector<std::vector<double>> rows = {
      {0.0, 3.0}, {1.0, 2.0}, {2.0, 1.0}, {3.0, 0.0}};
  const std::vector<double> d = crowding_distances(rows, {0, 1, 2, 3});
  ASSERT_EQ(d.size(), 4u);
  EXPECT_EQ(d[0], kInf);
  EXPECT_EQ(d[3], kInf);
  // Interior: (2-0)/3 per objective, two objectives.
  EXPECT_NEAR(d[1], 2.0 * (2.0 / 3.0), 1e-12);
  EXPECT_NEAR(d[2], 2.0 * (2.0 / 3.0), 1e-12);
}

TEST(CrowdingDistanceTest, SmallAndDegenerateFronts) {
  const std::vector<std::vector<double>> rows = {{1.0, 1.0}, {2.0, 2.0}, {1.0, 1.0}};
  // Singleton and pair fronts: all boundary, all infinite.
  EXPECT_EQ(crowding_distances(rows, {0}), (std::vector<double>{kInf}));
  EXPECT_EQ(crowding_distances(rows, {0, 1}), (std::vector<double>{kInf, kInf}));
  // A duplicated-value front: the span is zero on every objective, so the
  // interior duplicate contributes nothing but must not divide by zero.
  const std::vector<double> d = crowding_distances(rows, {0, 2});
  EXPECT_EQ(d[0], kInf);
  EXPECT_EQ(d[1], kInf);
  EXPECT_TRUE(crowding_distances(rows, {}).empty());
}

TEST(CrowdingDistanceTest, LessCrowdedPointScoresHigher) {
  // Four frontier points, one isolated: the isolated interior point must
  // get a strictly larger distance than the packed one.
  const std::vector<std::vector<double>> rows = {
      {0.0, 10.0}, {1.0, 9.0}, {1.5, 8.5}, {10.0, 0.0}};
  const std::vector<double> d = crowding_distances(rows, {0, 1, 2, 3});
  // Index 2 sits right next to 1 and far from 3 — compare interiors 1 vs 2.
  EXPECT_GT(d[2], d[1]);
}

// ------------------------------------------------- tournaments / crowded <

TEST(CrowdedCompareTest, RankThenCrowdingThenIndex) {
  EXPECT_TRUE(crowded_less(0, 1.0, 5, 1, 9.0, 2));   // lower rank wins
  EXPECT_FALSE(crowded_less(2, 9.0, 1, 1, 0.0, 7));
  EXPECT_TRUE(crowded_less(1, 3.0, 5, 1, 2.0, 2));   // same rank: crowding
  EXPECT_TRUE(crowded_less(1, kInf, 5, 1, 3.0, 2));  // infinity beats finite
  EXPECT_TRUE(crowded_less(1, 3.0, 2, 1, 3.0, 5));   // full tie: lower index
  EXPECT_FALSE(crowded_less(1, 3.0, 5, 1, 3.0, 2));
}

TEST(CrowdedCompareTest, TournamentSelectionIsDeterministicUnderSeed) {
  // A seeded tournament over a fixed ranking replays identically.
  const std::vector<size_t> ranks = {0, 1, 0, 2, 1, 0};
  const std::vector<double> dist = {kInf, 0.5, 1.0, kInf, 0.25, 2.0};
  const auto run = [&](uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<size_t> pick(0, ranks.size() - 1);
    std::vector<size_t> winners;
    for (int i = 0; i < 64; ++i) {
      const size_t a = pick(rng), b = pick(rng);
      const size_t w = crowded_less(ranks[a], dist[a], a, ranks[b], dist[b], b) ? a : b;
      // The sole rank-2 individual can only win a tournament against itself.
      if (w == 3) {
        EXPECT_EQ(a, b);
      }
      winners.push_back(w);
    }
    return winners;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));  // and the seed actually matters
}

// -------------------------------------------------------------- constraints

TEST(ConstraintTest, ParsesComparisonsAndImplications) {
  const SearchSpace s = parse_space(R"({
    "base": "tiny",
    "knobs": {
      "adcs_per_core": [2, 4, 8, 16, 32],
      "xbars_per_core": [8, 16],
      "rob_size": [4, 8, 16],
      "policy": ["perf", "util"]
    },
    "constraints": [
      "adcs_per_core <= xbars_per_core",
      "policy == util -> rob_size >= 8",
      "rob_size != 16"
    ]
  })");
  ASSERT_EQ(s.constraints.size(), 3u);
  EXPECT_TRUE(s.constraints[0].consequent.rhs_is_knob);
  EXPECT_TRUE(s.constraints[1].antecedent.has_value());

  const auto pt = [](int adcs, int xbars, int rob, const char* pol) {
    return Point{{"adcs_per_core", json::Value(adcs)},
                 {"xbars_per_core", json::Value(xbars)},
                 {"rob_size", json::Value(rob)},
                 {"policy", json::Value(pol)}};
  };
  EXPECT_TRUE(s.satisfies(pt(8, 16, 8, "util")));
  EXPECT_FALSE(s.satisfies(pt(32, 16, 8, "util")));   // adcs > xbars
  EXPECT_FALSE(s.satisfies(pt(8, 16, 4, "util")));    // implication violated
  EXPECT_TRUE(s.satisfies(pt(8, 16, 4, "perf")));     // antecedent false: ok
  EXPECT_FALSE(s.satisfies(pt(8, 16, 16, "perf")));   // != literal
}

TEST(ConstraintTest, RejectsAdversarialSpecs) {
  const auto expect_error = [](const char* text, const char* needle) {
    try {
      parse_space(text);
      FAIL() << "accepted: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  // Unknown knob in a predicate (left side).
  expect_error(R"({"base": "tiny",
                   "knobs": {"rob_size": [4, 8]},
                   "constraints": ["warp_drive <= 4"]})",
               "unknown knob \"warp_drive\"");
  // Type mismatch: numeric knob against a string literal.
  expect_error(R"({"base": "tiny",
                   "knobs": {"rob_size": [4, 8]},
                   "constraints": ["rob_size == fast"]})",
               "type mismatch");
  // Ordering on a string-valued knob.
  expect_error(R"({"base": "tiny",
                   "knobs": {"rob_size": [4], "policy": ["perf", "util"]},
                   "constraints": ["policy <= util"]})",
               "type mismatch");
  // No comparison operator at all.
  expect_error(R"({"base": "tiny",
                   "knobs": {"rob_size": [4, 8]},
                   "constraints": ["rob_size 8"]})",
               "expected a comparison");
  // Chained implication.
  expect_error(R"({"base": "tiny",
                   "knobs": {"rob_size": [4, 8], "batch": [1, 2]},
                   "constraints": ["rob_size >= 8 -> batch >= 2 -> rob_size >= 4"]})",
               "at most one");
  // Cyclic implication between two knobs.
  expect_error(R"({"base": "tiny",
                   "knobs": {"rob_size": [4, 8], "batch": [1, 2]},
                   "constraints": ["rob_size >= 8 -> batch >= 2",
                                    "batch >= 2 -> rob_size >= 8"]})",
               "cyclic implication");
  // Empty feasible region: no rob_size value satisfies the comparison.
  expect_error(R"({"base": "tiny",
                   "knobs": {"rob_size": [4, 8]},
                   "constraints": ["rob_size <= 2"]})",
               "empty feasible region");
  // Empty feasible region via an implication that always fires and never
  // holds.
  expect_error(R"({"base": "tiny",
                   "knobs": {"rob_size": [4, 8]},
                   "constraints": ["rob_size >= 4 -> rob_size <= 2"]})",
               "empty feasible region");
  // Jointly empty region: each constraint is satisfiable alone, but no
  // point satisfies both.
  expect_error(R"({"base": "tiny",
                   "knobs": {"rob_size": [4, 8]},
                   "constraints": ["rob_size <= 4", "rob_size >= 8"]})",
               "jointly unsatisfiable");
  // Constraints must be strings.
  expect_error(R"({"base": "tiny",
                   "knobs": {"rob_size": [4, 8]},
                   "constraints": [42]})",
               "must be strings");
}

TEST(ConstraintTest, EverySamplerProposesOnlyFeasiblePoints) {
  // Without the constraint, 3 of 5 adc values exceed every xbar option half
  // the time — plenty of infeasible corners for a sampler to stumble into.
  const SearchSpace s = parse_space(R"({
    "base": "tiny",
    "model": "mlp",
    "input_hw": 8,
    "knobs": {
      "adcs_per_core": [2, 4, 8, 16, 32],
      "xbars_per_core": [8, 16],
      "rob_size": [4, 8]
    },
    "constraints": ["adcs_per_core <= xbars_per_core"]
  })");
  const auto fake_evaluate = [](const Point& p) {
    EvaluatedPoint ep;
    ep.point = p;
    ep.label = point_label(p);
    ep.feasible = ep.ok = true;
    ep.metrics.latency_ms = 64.0 / p.at("adcs_per_core").as_double();
    ep.metrics.energy_uj = p.at("adcs_per_core").as_double() + p.at("rob_size").as_double();
    return ep;
  };
  for (const char* kind : {"grid", "random", "evolve", "nsga2"}) {
    const auto sampler = make_sampler(kind, s, 3);
    std::vector<EvaluatedPoint> history;
    for (int round = 0; round < 4; ++round) {
      const std::vector<Point> proposed = sampler->propose(8, history);
      for (const Point& p : proposed) {
        EXPECT_TRUE(s.satisfies(p)) << kind << ": " << point_label(p);
        // Constraint-feasible points also pass ArchConfig::validate() —
        // the declarative block matches the hardware rule.
        EXPECT_TRUE(materialize(s, p).feasible) << kind << ": " << point_label(p);
        history.push_back(fake_evaluate(p));
      }
      if (proposed.empty()) break;
    }
    EXPECT_FALSE(history.empty()) << kind;
    if (std::string(kind) != "grid") {
      EXPECT_GT(sampler->constraint_skips(), 0u) << kind;
    }
  }
  // Grid enumerates exactly the feasible sub-product: adcs<=8 pairs with
  // both xbar options, adcs=16 with one — (3*2 + 1*1 + 0) * 2 rob values.
  const auto grid = make_sampler("grid", s);
  EXPECT_EQ(grid->propose(SIZE_MAX, {}).size(), 14u);
  EXPECT_EQ(grid->constraint_skips(), 6u);
}

TEST(ConstraintTest, ZeroValidateFailuresReachTheEvaluator) {
  // A seeded sweep of the constrained space: with the declarative block in
  // place, no validate()-infeasible point may ever reach the evaluator.
  const SearchSpace s = parse_space(R"({
    "base": "tiny",
    "model": "mlp",
    "input_hw": 8,
    "knobs": {
      "adcs_per_core": [2, 4, 8, 16, 32],
      "xbars_per_core": [8, 16],
      "rob_size": [4, 8]
    },
    "constraints": ["adcs_per_core <= xbars_per_core"]
  })");
  ExploreOptions opts;
  opts.sampler = "random";
  opts.budget = 14;
  opts.seed = 5;
  opts.jobs = 2;
  const ExploreResult res = explore(s, opts);
  EXPECT_EQ(res.points.size(), 14u);
  EXPECT_EQ(res.infeasible_count(), 0u);
  EXPECT_EQ(res.failed_count(), 0u);
  EXPECT_GT(res.constraints_skipped, 0u);
  EXPECT_FALSE(res.frontier.empty());
}

// -------------------------------------------------------------------- nsga2

TEST(Nsga2SamplerTest, DeterministicUnderSeedAndRespectsGenerationCap) {
  const SearchSpace s = synthetic_space();
  const auto run = [&](uint64_t seed, size_t generations) {
    SamplerOptions opts;
    opts.seed = seed;
    opts.population = 8;
    opts.generations = generations;
    const auto sampler = make_sampler("nsga2", s, opts);
    EXPECT_EQ(sampler->generation_size(), 8u);
    std::vector<EvaluatedPoint> history;
    std::vector<std::string> keys;
    for (int round = 0; round < 6; ++round) {
      const std::vector<Point> proposed = sampler->propose(8, history);
      if (proposed.empty()) break;
      for (const Point& p : proposed) {
        keys.push_back(point_key(p));
        history.push_back(synthetic_evaluate(s, p));
      }
    }
    return keys;
  };
  const std::vector<std::string> a = run(9, 0);
  EXPECT_EQ(a, run(9, 0));                       // same seed: same sequence
  EXPECT_NE(a, run(10, 0));                      // seed matters
  EXPECT_EQ(run(9, 3).size(), 24u);              // 3 generations * population 8
  // No duplicates ever proposed.
  std::set<std::string> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), a.size());
}

TEST(Nsga2SamplerTest, FindsAtLeastAsManyFrontierPointsAsEvolve) {
  // The acceptance bar from the issue, on the seeded rugged synthetic
  // space with a fixed evaluation budget: nsga2's crowding-driven global
  // search must cover the trade-off curve at least as well as the (1+λ)
  // hill climb, whose single-knob neighbor steps keep landing on the
  // dominated parity shelves. Everything here is deterministic — both
  // samplers replay exactly for a given seed — so these comparisons are
  // stable until sampler behavior itself changes.
  const SearchSpace s = synthetic_space();
  const size_t budget = 60;
  for (const uint64_t seed : {1ull, 2ull, 5ull, 7ull}) {
    const std::vector<EvaluatedPoint> nsga2 = run_synthetic(s, "nsga2", seed, budget);
    const std::vector<EvaluatedPoint> evolve = run_synthetic(s, "evolve", seed, budget);
    ASSERT_EQ(nsga2.size(), budget);
    ASSERT_EQ(evolve.size(), budget);
    EXPECT_GE(frontier_size(s, nsga2), frontier_size(s, evolve)) << "seed " << seed;
  }
}

TEST(Nsga2SamplerTest, ExploreEndToEndDeterministic) {
  // Full explore() with real simulations on a tiny space: nsga2 must be
  // deterministic and productive through the whole pipeline too.
  const SearchSpace s = parse_space(R"({
    "name": "nsga2-e2e",
    "base": "tiny",
    "model": "mlp",
    "input_hw": 8,
    "knobs": {
      "rob_size": [4, 8],
      "adcs_per_core": [2, 4],
      "batch": [1, 2]
    }
  })");
  ExploreOptions opts;
  opts.sampler = "nsga2";
  opts.budget = 6;
  opts.population = 4;
  opts.seed = 3;
  opts.jobs = 2;
  const ExploreResult a = explore(s, opts);
  const ExploreResult b = explore(s, opts);
  EXPECT_EQ(a.points.size(), 6u);
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  EXPECT_FALSE(a.frontier.empty());
  EXPECT_EQ(a.sampler, "nsga2");
}

}  // namespace
}  // namespace pim::dse
