// Unit tests for the stats/report module and the arch-side meters.
#include <gtest/gtest.h>

#include "arch/stats.h"
#include "stats/report.h"

namespace pim::stats {
namespace {

TEST(Series, NormalizedToFirst) {
  EXPECT_EQ(normalized({2.0, 4.0, 1.0}), (std::vector<double>{1.0, 2.0, 0.5}));
  EXPECT_EQ(normalized({5.0}, 10.0), (std::vector<double>{0.5}));
  EXPECT_TRUE(normalized({}).empty());
  EXPECT_THROW(normalized({0.0, 1.0}), std::invalid_argument);
}

TEST(Series, Ratio) {
  EXPECT_EQ(ratio({1.0, 4.0}, {2.0, 2.0}), (std::vector<double>{0.5, 2.0}));
  EXPECT_THROW(ratio({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Series, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
  EXPECT_DOUBLE_EQ(geomean({3.0}), 3.0);
  EXPECT_THROW(geomean({1.0, -1.0}), std::invalid_argument);
}

TEST(Tables, Markdown) {
  const std::string t = markdown_table({"a", "b"}, {{"1", "2"}, {"3", "4"}});
  EXPECT_NE(t.find("| a | b |"), std::string::npos);
  EXPECT_NE(t.find("| 3 | 4 |"), std::string::npos);
  EXPECT_NE(t.find("|---|---|"), std::string::npos);
}

TEST(Tables, Csv) {
  EXPECT_EQ(csv({"x", "y"}, {{"1", "2"}}), "x,y\n1,2\n");
}

TEST(Tables, Fmt) {
  EXPECT_EQ(fmt(0), "0");
  EXPECT_EQ(fmt(1.5), "1.500");
  EXPECT_EQ(fmt(12345.0), "1.23e+04");
}

TEST(BarChart, RendersAllSeries) {
  const std::string chart =
      bar_chart("demo", {"net1", "net2"}, {{"a", {1.0, 0.5}}, {"b", {0.25, 1.0}}}, 8);
  EXPECT_NE(chart.find("== demo =="), std::string::npos);
  EXPECT_NE(chart.find("net1"), std::string::npos);
  EXPECT_NE(chart.find("########"), std::string::npos);  // full-scale bar
}

}  // namespace
}  // namespace pim::stats

namespace pim::arch {
namespace {

TEST(EnergyMeter, AccumulatesByComponent) {
  EnergyMeter m;
  m.add(Component::Xbar, 10.0);
  m.add(Component::Xbar, 5.0);
  m.add(Component::Adc, 1.0);
  EXPECT_DOUBLE_EQ(m.get(Component::Xbar), 15.0);
  EXPECT_DOUBLE_EQ(m.total_pj(), 16.0);
}

TEST(EnergyMeter, StaticIntegration) {
  EnergyMeter m;
  m.add_static(/*mW=*/2.0, /*ps=*/1'000'000);  // 2 mW over 1 us = 2000 pJ
  EXPECT_DOUBLE_EQ(m.get(Component::Static), 2000.0);
}

TEST(LayerStats, CommRatio) {
  LayerStats ls;
  ls.matrix_busy_ps = 300;
  ls.vector_busy_ps = 100;
  ls.transfer_busy_ps = 600;
  EXPECT_DOUBLE_EQ(ls.comm_ratio(), 0.6);
  LayerStats empty;
  EXPECT_DOUBLE_EQ(empty.comm_ratio(), 0.0);
}

TEST(LayerStats, Span) {
  LayerStats ls;
  ls.first_issue_ps = 100;
  ls.last_complete_ps = 350;
  EXPECT_EQ(ls.span_ps(), 250u);
}

TEST(RunStats, PowerFormula) {
  RunStats rs;
  rs.total_ps = 1'000'000;           // 1 us
  rs.energy.add(Component::Xbar, 2'000'000.0);  // 2 uJ... 2e6 pJ
  // P = 2e6 pJ / 1e6 ps * 1e3 = 2000 mW? (1 pJ/ps == 1 W) -> 2 W = 2000 mW.
  EXPECT_DOUBLE_EQ(rs.avg_power_mw(), 2000.0);
  EXPECT_DOUBLE_EQ(rs.latency_ms(), 1e-3);
}

TEST(Component, NamesAreStable) {
  EXPECT_STREQ(component_name(Component::Xbar), "xbar");
  EXPECT_STREQ(component_name(Component::Noc), "noc");
  EXPECT_STREQ(component_name(Component::Static), "static");
}

}  // namespace
}  // namespace pim::arch
