// Tests for the parallel scenario driver (runtime::BatchRunner).
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "config/arch_config.h"
#include "runtime/batch_runner.h"
#include "workload/workload.h"

namespace pim {
namespace {

std::vector<runtime::Scenario> small_sweep(bool functional = true) {
  return runtime::expand_sweep(
      {workload::WorkloadSpec::builtin("tiny_cnn", /*input_hw=*/8),
       workload::WorkloadSpec::mlp(/*input_hw=*/8)},
      {compiler::MappingPolicy::PerformanceFirst, compiler::MappingPolicy::UtilizationFirst},
      {1, 2}, config::ArchConfig::tiny(), functional);
}

TEST(ExpandSweep, CrossProductWithUniqueNames) {
  std::vector<runtime::Scenario> sweep = small_sweep();
  ASSERT_EQ(sweep.size(), 8u);  // 2 models x 2 policies x 2 batch sizes
  std::set<std::string> names;
  for (const runtime::Scenario& s : sweep) names.insert(s.name);
  EXPECT_EQ(names.size(), sweep.size()) << "scenario names must be unique";
  EXPECT_TRUE(names.count("tiny_cnn/perf/b1"));
  EXPECT_TRUE(names.count("mlp/util/b2"));
}

TEST(BatchRunner, RunsAllScenariosInInputOrder) {
  std::vector<runtime::Scenario> sweep = small_sweep();
  runtime::BatchResult res = runtime::BatchRunner(4).run(sweep);
  ASSERT_EQ(res.results.size(), sweep.size());
  EXPECT_TRUE(res.all_ok());
  for (size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_EQ(res.results[i].name, sweep[i].name) << "results must keep input order";
    EXPECT_TRUE(res.results[i].report.finished);
    EXPECT_GT(res.results[i].report.stats.total_ps, 0u);
  }
}

TEST(BatchRunner, ParallelIsBitIdenticalToSerial) {
  std::vector<runtime::Scenario> sweep = small_sweep();
  runtime::BatchResult parallel = runtime::BatchRunner(4).run(sweep);
  runtime::BatchResult serial = runtime::BatchRunner(1).run(sweep);
  ASSERT_TRUE(parallel.all_ok());
  ASSERT_TRUE(serial.all_ok());
  std::vector<std::string> diffs = runtime::compare_results(parallel, serial);
  EXPECT_TRUE(diffs.empty()) << diffs.front();
  for (size_t i = 0; i < sweep.size(); ++i) {
    // Spot-check the strongest claims directly, not only via compare_results.
    EXPECT_EQ(parallel.results[i].report.stats.total_ps,
              serial.results[i].report.stats.total_ps);
    EXPECT_EQ(parallel.results[i].report.stats.total_instructions(),
              serial.results[i].report.stats.total_instructions());
    EXPECT_EQ(parallel.results[i].report.output, serial.results[i].report.output);
  }
}

TEST(BatchRunner, FailedScenarioIsCapturedOthersStillRun) {
  std::vector<runtime::Scenario> sweep = small_sweep();
  sweep[2].workload = workload::WorkloadSpec::builtin("no_such_network", 8);
  runtime::BatchResult res = runtime::BatchRunner(2).run(sweep);
  ASSERT_EQ(res.results.size(), sweep.size());
  EXPECT_FALSE(res.all_ok());
  EXPECT_FALSE(res.results[2].ok);
  EXPECT_FALSE(res.results[2].error.empty());
  for (size_t i = 0; i < sweep.size(); ++i) {
    if (i != 2) {
      EXPECT_TRUE(res.results[i].ok) << res.results[i].error;
    }
  }
}

TEST(BatchRunner, ProgressCallbackFiresOncePerScenario) {
  std::vector<runtime::Scenario> sweep = small_sweep(/*functional=*/false);
  runtime::BatchRunner runner(3);
  std::atomic<size_t> calls{0};
  size_t last_total = 0;
  runner.set_progress([&](const runtime::ScenarioResult&, size_t, size_t total) {
    calls.fetch_add(1);
    last_total = total;
  });
  runner.run(sweep);
  EXPECT_EQ(calls.load(), sweep.size());
  EXPECT_EQ(last_total, sweep.size());
}

TEST(BatchResult, EmittersContainEveryScenario) {
  std::vector<runtime::Scenario> sweep = small_sweep(/*functional=*/false);
  runtime::BatchResult res = runtime::BatchRunner(0).run(sweep);
  const std::string md = res.markdown();
  const json::Value js = res.to_json();
  ASSERT_EQ(js.at("scenarios").size(), sweep.size());
  for (size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_NE(md.find(sweep[i].name), std::string::npos) << sweep[i].name;
    EXPECT_EQ(js.at("scenarios").at(i).at("name").as_string(), sweep[i].name);
  }
  EXPECT_GT(js.at("speedup").as_double(), 0.0);
  EXPECT_EQ(js.at("jobs").as_int(), res.jobs);
}

TEST(BatchRunner, ZeroJobsPicksHardwareConcurrency) {
  runtime::BatchRunner runner(0);
  EXPECT_GE(runner.jobs(), 1u);
}

}  // namespace
}  // namespace pim
