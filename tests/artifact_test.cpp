// pim::artifact — the compile-once/simulate-many store: compile-relevant
// arch keying, single-flight build sharing under concurrency, LRU eviction,
// bit-identity of cached-compile simulation against the direct path, and
// the evaluator fingerprint/build TOCTOU regression the layer closes.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <thread>
#include <vector>

#include "artifact/artifact.h"
#include "config/arch_config.h"
#include "dse/evaluator.h"
#include "nn/executor.h"
#include "dse/search_space.h"
#include "runtime/batch_runner.h"
#include "runtime/simulator.h"
#include "workload/workload.h"

namespace pim {
namespace {

std::string fresh_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "pim_artifact_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------- arch key

TEST(ArchKey, SimOnlyFieldsShareOneCompileIdentity) {
  const config::ArchConfig base = config::ArchConfig::tiny();
  const uint64_t key = artifact::arch_key(base);

  // Every simulation-side knob a sweep typically varies must keep the key.
  config::ArchConfig cfg = base;
  cfg.core.rob_size *= 2;
  cfg.core.freq_mhz *= 2;
  cfg.core.fetch_decode_cycles += 1;
  cfg.core.dispatch_width += 1;
  cfg.noc.freq_mhz *= 2;
  cfg.noc.link_bytes_per_cycle *= 2;
  cfg.noc.hop_latency_cycles += 1;
  cfg.sim.max_time_ps = 12345;
  cfg.sim.collect_unit_stats = !cfg.sim.collect_unit_stats;
  cfg.name = "renamed";
  EXPECT_EQ(artifact::arch_key(cfg), key)
      << "sim-only fields leaked into the compile-relevant fingerprint";
}

TEST(ArchKey, EveryCompileRelevantFieldChangesTheKey) {
  const config::ArchConfig base = config::ArchConfig::tiny();
  const uint64_t key = artifact::arch_key(base);
  std::set<uint64_t> keys = {key};

  const auto expect_new_key = [&](config::ArchConfig cfg, const char* field) {
    const uint64_t k = artifact::arch_key(cfg);
    EXPECT_NE(k, key) << field << " must be compile-relevant";
    EXPECT_TRUE(keys.insert(k).second) << field << " collided with another mutation";
  };
  {
    config::ArchConfig c = base;
    c.core_count *= 4;
    c.mesh_width *= 2;
    c.mesh_height *= 2;
    expect_new_key(c, "core_count");
  }
  {
    config::ArchConfig c = base;
    c.core.matrix.xbar_count *= 2;
    expect_new_key(c, "core.matrix.xbar_count");
  }
  {
    config::ArchConfig c = base;
    c.core.matrix.xbar.rows *= 2;
    expect_new_key(c, "core.matrix.xbar.rows");
  }
  {
    config::ArchConfig c = base;
    c.core.matrix.xbar.cols *= 2;
    expect_new_key(c, "core.matrix.xbar.cols");
  }
  {
    config::ArchConfig c = base;
    c.core.local_memory.size_bytes *= 2;
    expect_new_key(c, "core.local_memory.size_bytes");
  }
  {
    config::ArchConfig c = base;
    c.core.register_count *= 2;
    expect_new_key(c, "core.register_count");
  }
  {
    config::ArchConfig c = base;
    c.global_memory.size_bytes *= 2;
    expect_new_key(c, "global_memory.size_bytes");
  }
}

// ------------------------------------------------------------ store basics

TEST(Store, GraphsAreCachedAndFailuresAreCachedToo) {
  artifact::Store store;
  const workload::WorkloadSpec spec = workload::WorkloadSpec::builtin("tiny_cnn", 8);
  const artifact::GraphHandle a = store.graph(spec, /*init_params=*/false);
  const artifact::GraphHandle b = store.graph(spec, /*init_params=*/false);
  ASSERT_NE(a.built, nullptr);
  EXPECT_EQ(a.built.get(), b.built.get()) << "second request must share the built graph";
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  // init_params is part of the key: a functional build is a different artifact.
  const artifact::GraphHandle c = store.graph(spec, /*init_params=*/true);
  EXPECT_NE(c.built.get(), a.built.get());

  // A failing build is also built exactly once; every request rethrows.
  const workload::WorkloadSpec bad = workload::WorkloadSpec::builtin("no_such_network", 8);
  EXPECT_THROW(store.graph(bad, false), std::exception);
  EXPECT_THROW(store.graph(bad, false), std::exception);
  const artifact::StoreStats s = store.stats();
  EXPECT_EQ(s.graph_misses, 3u);  // tiny_cnn x2 keys + functional + bad
  EXPECT_EQ(s.graph_hits, 2u);    // the tiny_cnn repeat + the bad repeat
}

TEST(Store, GraphFilesDedupByContentNotPath) {
  const std::string dir = fresh_dir("content");
  const nn::Graph g = workload::build(workload::WorkloadSpec::builtin("tiny_cnn", 8),
                                      /*init_params=*/true)
                          .graph;
  const std::string path_a = dir + "/a.json";
  const std::string path_b = dir + "/b.json";
  workload::export_graph(g, path_a);
  workload::export_graph(g, path_b);

  artifact::Store store;
  const artifact::GraphHandle a =
      store.graph(workload::WorkloadSpec::graph_file(path_a), true);
  const artifact::GraphHandle b =
      store.graph(workload::WorkloadSpec::graph_file(path_b), true);
  EXPECT_EQ(a.fingerprint, b.fingerprint) << "identical content must share one fingerprint";
  EXPECT_EQ(a.built.get(), b.built.get()) << "identical content must share one built graph";
  const artifact::StoreStats s = store.stats();
  EXPECT_EQ(s.graph_misses, 1u);
  EXPECT_EQ(s.graph_hits, 1u);
}

// ------------------------------------- compile-once on a sim-knob sweep

TEST(Store, SimKnobSweepCompilesExactlyOnceBitIdentical) {
  const workload::WorkloadSpec spec = workload::WorkloadSpec::builtin("tiny_cnn", 8);
  artifact::Store store;
  const artifact::GraphHandle wl = store.graph(spec, /*init_params=*/false);
  compiler::CompileOptions copts;
  copts.include_weights = false;

  for (const uint32_t rob : {2u, 4u, 8u, 16u}) {
    config::ArchConfig cfg = config::ArchConfig::tiny();
    cfg.core.rob_size = rob;
    cfg.sim.functional = false;
    const auto net = store.program(wl, cfg, copts);
    ASSERT_NE(net, nullptr);
    const runtime::Report cached = runtime::simulate_compiled(*net, cfg);
    const runtime::Report direct = runtime::simulate_network(wl.built->graph, cfg, copts);
    EXPECT_EQ(cached.stats.total_ps, direct.stats.total_ps) << "rob=" << rob;
    EXPECT_EQ(cached.stats.total_instructions(), direct.stats.total_instructions())
        << "rob=" << rob;
  }
  const artifact::StoreStats s = store.stats();
  EXPECT_EQ(s.program_misses, 1u) << "ROB size is sim-only; one compile must serve all points";
  EXPECT_EQ(s.program_hits, 3u);
}

// --------------------------------------------- zoo x policy oracle

TEST(Store, ZooTimesPolicyOracleBitIdenticalToDirectPath) {
  // Every zoo model under both mapping policies: the store path (resolve,
  // compile via Store, simulate the shared program) must be bit-identical
  // to the pre-refactor direct path — including agreeing on which
  // configurations fail to compile.
  config::ArchConfig cfg = config::ArchConfig::tiny();
  cfg.sim.functional = true;
  artifact::Store store;
  for (const std::string& model : workload::builtin_names()) {
    const workload::WorkloadSpec spec = workload::WorkloadSpec::builtin(model, 8);
    for (const compiler::MappingPolicy policy :
         {compiler::MappingPolicy::PerformanceFirst,
          compiler::MappingPolicy::UtilizationFirst}) {
      compiler::CompileOptions copts;
      copts.policy = policy;
      copts.include_weights = true;

      runtime::Report direct;
      bool direct_ok = true;
      std::string direct_err;
      try {
        const workload::BuiltWorkload wl = workload::build(spec, /*init_params=*/true);
        const nn::Tensor input = nn::random_input(wl.input_shape, /*seed=*/7);
        direct = runtime::simulate_network(wl.graph, cfg, copts, &input);
      } catch (const std::exception& e) {
        direct_ok = false;
        direct_err = e.what();
      }

      runtime::Report cached;
      bool cached_ok = true;
      try {
        const artifact::GraphHandle wl = store.graph(spec, /*init_params=*/true);
        const auto net = store.program(wl, cfg, copts);
        const nn::Tensor input = nn::random_input(wl.built->input_shape, /*seed=*/7);
        cached = runtime::simulate_compiled(*net, cfg, &input);
      } catch (const std::exception& e) {
        cached_ok = false;
        EXPECT_FALSE(direct_ok) << model << ": store path threw (" << e.what()
                                << ") but the direct path succeeded";
      }
      EXPECT_EQ(direct_ok, cached_ok) << model << " " << direct_err;
      if (!direct_ok || !cached_ok) continue;
      EXPECT_EQ(direct.stats.total_ps, cached.stats.total_ps) << model;
      EXPECT_EQ(direct.stats.total_instructions(), cached.stats.total_instructions())
          << model;
      EXPECT_EQ(direct.output, cached.output) << model << ": functional output differs";
    }
  }
}

// --------------------------------------------------- single-flight hammer

TEST(Store, ConcurrentRequestsCompileOncePerKey) {
  const workload::WorkloadSpec spec = workload::WorkloadSpec::builtin("tiny_cnn", 8);
  artifact::Store store;
  const artifact::GraphHandle wl = store.graph(spec, /*init_params=*/false);
  config::ArchConfig cfg = config::ArchConfig::tiny();
  cfg.sim.functional = false;

  constexpr unsigned kThreads = 8;
  std::vector<std::shared_ptr<const runtime::CompiledNetwork>> got(kThreads * 2);
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      // Two distinct option keys per thread: batch 1 and batch 2.
      for (uint32_t b : {1u, 2u}) {
        compiler::CompileOptions copts;
        copts.include_weights = false;
        copts.batch = b;
        got[t * 2 + (b - 1)] = store.program(wl, cfg, copts);
      }
    });
  }
  for (std::thread& t : pool) t.join();

  for (unsigned t = 1; t < kThreads; ++t) {
    EXPECT_EQ(got[t * 2].get(), got[0].get()) << "batch=1 must be one shared artifact";
    EXPECT_EQ(got[t * 2 + 1].get(), got[1].get()) << "batch=2 must be one shared artifact";
  }
  EXPECT_NE(got[0].get(), got[1].get());
  const artifact::StoreStats s = store.stats();
  EXPECT_EQ(s.program_misses, 2u) << "exactly one compile per unique key";
  EXPECT_EQ(s.program_hits, kThreads * 2 - 2);
}

// ------------------------------------------------------------ LRU eviction

TEST(Store, LruEvictionDropsOldestFinishedProgram) {
  artifact::Store::Options opt;
  opt.max_programs = 2;
  artifact::Store store(opt);
  const artifact::GraphHandle wl =
      store.graph(workload::WorkloadSpec::builtin("tiny_cnn", 8), false);
  const config::ArchConfig cfg = config::ArchConfig::tiny();

  const auto program_for_batch = [&](uint32_t b) {
    compiler::CompileOptions copts;
    copts.include_weights = false;
    copts.batch = b;
    return store.program(wl, cfg, copts);
  };
  program_for_batch(1);
  program_for_batch(2);
  program_for_batch(3);  // over the cap: evicts batch=1 (least recently used)
  EXPECT_GE(store.stats().evictions, 1u);
  const size_t misses_before = store.stats().program_misses;
  program_for_batch(1);  // evicted, so it compiles again
  EXPECT_EQ(store.stats().program_misses, misses_before + 1);
  program_for_batch(3);  // still resident (was most recently used)
  EXPECT_EQ(store.stats().program_misses, misses_before + 1);
}

// ----------------------------------------------------- BatchRunner sharing

TEST(BatchRunnerArtifacts, SixteenScenariosFourCompilesBitIdentical) {
  // 16 scenarios over one workload and 4 unique compile keys (policy x
  // batch), hammered by 8 workers against one shared store: the graph is
  // built once, each unique program compiles once, and the results are
  // bit-identical to a serial run with a fresh store.
  std::vector<runtime::Scenario> scenarios;
  for (int rep = 0; rep < 4; ++rep) {
    for (const compiler::MappingPolicy policy :
         {compiler::MappingPolicy::PerformanceFirst,
          compiler::MappingPolicy::UtilizationFirst}) {
      for (const uint32_t batch : {1u, 2u}) {
        runtime::Scenario s;
        s.workload = workload::WorkloadSpec::builtin("tiny_cnn", 8);
        s.arch = config::ArchConfig::tiny();
        s.copts.policy = policy;
        s.copts.batch = batch;
        s.functional = false;
        s.name = s.derive_name() + "#" + std::to_string(rep);
        scenarios.push_back(std::move(s));
      }
    }
  }
  ASSERT_EQ(scenarios.size(), 16u);

  auto store = std::make_shared<artifact::Store>();
  runtime::BatchRunner runner(8);
  runner.set_artifacts(store);
  const runtime::BatchResult parallel = runner.run(scenarios);
  ASSERT_TRUE(parallel.all_ok());
  EXPECT_EQ(parallel.artifacts.graph_misses, 1u);
  EXPECT_EQ(parallel.artifacts.graph_hits, 0u) << "prefetch memo must dedupe workloads";
  EXPECT_EQ(parallel.artifacts.program_misses, 4u);
  EXPECT_EQ(parallel.artifacts.program_hits, 12u);

  const runtime::BatchResult serial = runtime::BatchRunner(1).run(scenarios);
  const std::vector<std::string> diffs = runtime::compare_results(parallel, serial);
  EXPECT_TRUE(diffs.empty()) << diffs.front();
}

TEST(BatchRunnerArtifacts, ParallelPrefetchBitIdenticalOneBuildPerUniqueGraph) {
  // Many *unique* workloads so the prefetch itself fans out (the previous
  // test has one unique graph — its prefetch runs on a single thread). The
  // concurrent prefetch must still build each unique graph exactly once
  // (single-flight store), duplicate scenarios must share the resolve, and
  // results must be bit-identical to the serial-prefetch path (jobs=1).
  std::vector<runtime::Scenario> scenarios;
  const std::vector<int32_t> sizes = {6, 8, 10, 12, 14, 16};
  for (int rep = 0; rep < 2; ++rep) {
    for (const int32_t hw : sizes) {
      runtime::Scenario s;
      s.workload = workload::WorkloadSpec::builtin("tiny_cnn", hw);
      s.arch = config::ArchConfig::tiny();
      s.functional = false;
      s.name = s.derive_name() + "#" + std::to_string(rep);
      scenarios.push_back(std::move(s));
    }
  }

  auto store = std::make_shared<artifact::Store>();
  runtime::BatchRunner runner(8);
  runner.set_artifacts(store);
  const runtime::BatchResult parallel = runner.run(scenarios);
  ASSERT_TRUE(parallel.all_ok());
  EXPECT_EQ(parallel.artifacts.graph_misses, sizes.size())
      << "one graph build per unique workload, even with concurrent prefetch";
  EXPECT_EQ(parallel.artifacts.graph_hits, 0u) << "duplicates share the resolve, not the store";
  EXPECT_EQ(parallel.artifacts.program_misses, sizes.size());

  const runtime::BatchResult serial = runtime::BatchRunner(1).run(scenarios);
  const std::vector<std::string> diffs = runtime::compare_results(parallel, serial);
  EXPECT_TRUE(diffs.empty()) << diffs.front();
}

TEST(BatchRunnerArtifacts, ParallelPrefetchFailureParityWithSerial) {
  // A workload whose resolve fails deterministically (missing graph file)
  // must produce the same per-scenario error through the concurrent prefetch
  // as through the serial one, while healthy scenarios still succeed.
  std::vector<runtime::Scenario> scenarios;
  for (const int32_t hw : {8, 10, 12}) {
    runtime::Scenario s;
    s.workload = workload::WorkloadSpec::builtin("tiny_cnn", hw);
    s.arch = config::ArchConfig::tiny();
    s.name = s.derive_name();
    scenarios.push_back(std::move(s));
  }
  runtime::Scenario bad;
  bad.workload = workload::WorkloadSpec::graph_file(fresh_dir("prefetch_fail") + "/absent.json");
  bad.arch = config::ArchConfig::tiny();
  bad.name = "absent";
  scenarios.push_back(bad);

  const runtime::BatchResult parallel = runtime::BatchRunner(4).run(scenarios);
  const runtime::BatchResult serial = runtime::BatchRunner(1).run(scenarios);
  ASSERT_EQ(parallel.results.size(), 4u);
  EXPECT_TRUE(parallel.results[0].ok);
  EXPECT_FALSE(parallel.results[3].ok);
  EXPECT_EQ(parallel.results[3].fail_kind, runtime::FailKind::Exception);
  ASSERT_EQ(serial.results.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(parallel.results[i].ok, serial.results[i].ok) << i;
    EXPECT_EQ(parallel.results[i].error, serial.results[i].error) << i;
  }
}

// ------------------------------------------- evaluator TOCTOU regression

TEST(EvaluatorArtifacts, FileEditedMidBatchCannotPoisonTheResultCache) {
  // Regression for the fingerprint/build TOCTOU: the evaluator keys each
  // point on the workload file's fingerprint, then simulates. Before the
  // artifact layer, the simulation re-read the file — an edit between
  // keying and simulation made the key name content that never ran (and the
  // PR-5 guard could only refuse to cache it). Now the scenario carries the
  // exact parsed graph its key was fingerprinted on, so an edit mid-batch
  // affects nothing: every result reflects the original content and every
  // result is cached.
  const std::string dir = fresh_dir("toctou");
  const std::string wl_path = dir + "/net.json";
  const std::string cache_dir = dir + "/cache";
  const nn::Graph original =
      workload::build(workload::WorkloadSpec::builtin("tiny_cnn", 8), /*init_params=*/true)
          .graph;
  // Structurally different graph (different instruction counts) to swap in.
  const nn::Graph impostor =
      workload::build(workload::WorkloadSpec::mlp(8), /*init_params=*/true).graph;
  workload::export_graph(original, wl_path);

  dse::SearchSpace space;
  space.name = "toctou-space";
  space.base = config::ArchConfig::tiny();
  space.workload = workload::WorkloadSpec::graph_file(wl_path);
  space.functional = true;
  space.knobs.push_back({"rob_size", {json::Value(4), json::Value(8)}});
  const std::vector<dse::Point> points = {
      {{"rob_size", json::Value(4)}}, {{"rob_size", json::Value(8)}}};

  // Reference metrics: a clean evaluator, no cache, file untouched.
  std::vector<dse::EvaluatedPoint> reference;
  {
    dse::Evaluator clean(space, /*jobs=*/1);
    reference = clean.evaluate(points);
    ASSERT_TRUE(reference[0].ok && reference[1].ok)
        << reference[0].error << " " << reference[1].error;
    ASSERT_NE(reference[0].metrics.total_ps, 0u);
  }

  // Hostile run: rewrite the workload file with a different network as soon
  // as the first point resolves, while the batch is still in flight.
  {
    dse::EvalOptions opts;
    opts.jobs = 1;
    opts.cache_dir = cache_dir;
    dse::Evaluator ev(space, opts);
    bool swapped = false;
    ev.set_progress([&](const dse::EvaluatedPoint&, size_t, size_t) {
      if (!swapped) {
        swapped = true;
        workload::export_graph(impostor, wl_path);
      }
    });
    const std::vector<dse::EvaluatedPoint> hostile = ev.evaluate(points);
    ASSERT_TRUE(swapped);
    ASSERT_EQ(hostile.size(), 2u);
    for (size_t i = 0; i < 2; ++i) {
      ASSERT_TRUE(hostile[i].ok) << hostile[i].error;
      EXPECT_EQ(hostile[i].metrics.total_ps, reference[i].metrics.total_ps)
          << "point " << i << " simulated the edited file, not the keyed content";
      EXPECT_EQ(hostile[i].metrics.instructions, reference[i].metrics.instructions);
    }
    EXPECT_EQ(ev.cache_stats().misses, 2u);
    EXPECT_EQ(ev.cache_stats().hits, 0u);
  }

  // Restore the original content: a fresh evaluator must key back onto the
  // same fingerprints and be served fully from the cache — with metrics
  // that match the original content, proving nothing poisoned it.
  workload::export_graph(original, wl_path);
  {
    dse::EvalOptions opts;
    opts.jobs = 1;
    opts.cache_dir = cache_dir;
    dse::Evaluator warm(space, opts);
    const std::vector<dse::EvaluatedPoint> cached = warm.evaluate(points);
    EXPECT_EQ(warm.cache_stats().hits, 2u);
    EXPECT_EQ(warm.cache_stats().misses, 0u);
    for (size_t i = 0; i < 2; ++i) {
      ASSERT_TRUE(cached[i].ok) << cached[i].error;
      EXPECT_TRUE(cached[i].from_cache);
      EXPECT_EQ(cached[i].metrics.total_ps, reference[i].metrics.total_ps) << "point " << i;
    }
  }
}

}  // namespace
}  // namespace pim
