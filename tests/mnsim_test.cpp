// Unit tests for the MNSIM2.0-style behavior-level comparator.
#include <gtest/gtest.h>

#include "config/arch_config.h"
#include "mnsim/mnsim.h"
#include "nn/models.h"

namespace pim::mnsim {
namespace {

nn::Graph model(const std::string& name, int hw) {
  nn::ModelOptions mopt;
  mopt.input_hw = hw;
  mopt.init_params = false;
  return nn::build_model(name, mopt);
}

TEST(Mnsim, ProducesPositiveResults) {
  Result r = evaluate(model("vgg8", 32), config::ArchConfig::mnsim_like());
  EXPECT_GT(r.latency_ms, 0.0);
  EXPECT_GT(r.energy_uj, 0.0);
  EXPECT_GT(r.avg_power_mw, 0.0);
  EXPECT_EQ(r.network, "vgg8");
  EXPECT_FALSE(r.layers.empty());
}

TEST(Mnsim, LayerTimesAreMonotoneAlongChains) {
  nn::Graph g = model("vgg8", 32);
  Result r = evaluate(g, config::ArchConfig::mnsim_like());
  for (const nn::Layer& l : g.layers()) {
    for (int32_t pid : l.inputs) {
      EXPECT_GE(r.layers.at(l.id).finish_ns, r.layers.at(pid).first_out_ns)
          << "layer " << l.name;
    }
    EXPECT_LE(r.layers.at(l.id).first_out_ns, r.layers.at(l.id).finish_ns);
  }
}

TEST(Mnsim, LatencyGrowsWithInputResolution) {
  config::ArchConfig cfg = config::ArchConfig::mnsim_like();
  const double small = evaluate(model("vgg8", 16), cfg).latency_ms;
  const double large = evaluate(model("vgg8", 32), cfg).latency_ms;
  EXPECT_GT(large, small * 2);
}

TEST(Mnsim, HandlesResidualNetworks) {
  Result r = evaluate(model("resnet18", 32), config::ArchConfig::mnsim_like());
  EXPECT_GT(r.latency_ms, 0.0);
}

TEST(Mnsim, HandlesConcatNetworks) {
  // The paper notes MNSIM2.0's released code cannot run concat networks; our
  // re-implementation of its latency model generalizes to them.
  Result r = evaluate(model("googlenet", 32), config::ArchConfig::mnsim_like());
  EXPECT_GT(r.latency_ms, 0.0);
}

TEST(Mnsim, CommRatioWithinBounds) {
  Result r = evaluate(model("resnet18", 32), config::ArchConfig::mnsim_like());
  for (const auto& [id, lr] : r.layers) {
    EXPECT_GE(lr.comm_ratio(), 0.0);
    EXPECT_LE(lr.comm_ratio(), 1.0);
  }
}

TEST(Mnsim, PipelineBeatsSerialSum) {
  // The dataflow pipeline must be far better than executing layers serially.
  nn::Graph g = model("vgg8", 32);
  config::ArchConfig cfg = config::ArchConfig::mnsim_like();
  Result r = evaluate(g, cfg);
  double serial_ns = 0;
  for (const auto& [id, lr] : r.layers) {
    const nn::Layer& l = g.layer(id);
    serial_ns += lr.compute_ns * static_cast<double>(std::max<int64_t>(
                                     1, int64_t{l.out_shape.h} * l.out_shape.w));
  }
  EXPECT_LT(r.latency_ms, serial_ns * 1e-6);
}

TEST(Mnsim, DeterministicAcrossCalls) {
  nn::Graph g = model("squeezenet", 32);
  config::ArchConfig cfg = config::ArchConfig::mnsim_like();
  EXPECT_DOUBLE_EQ(evaluate(g, cfg).latency_ms, evaluate(g, cfg).latency_ms);
}

TEST(Mnsim, FasterNocReducesCommShare) {
  nn::Graph g = model("resnet18", 32);
  config::ArchConfig slow = config::ArchConfig::mnsim_like();
  slow.noc.link_bytes_per_cycle = 1;
  slow.noc.hop_latency_cycles = 16;
  config::ArchConfig fast = config::ArchConfig::mnsim_like();
  fast.noc.link_bytes_per_cycle = 128;
  fast.noc.hop_latency_cycles = 1;
  double slow_comm = 0, fast_comm = 0;
  for (const auto& [id, lr] : evaluate(g, slow).layers) slow_comm += lr.comm_ns;
  for (const auto& [id, lr] : evaluate(g, fast).layers) fast_comm += lr.comm_ns;
  EXPECT_GT(slow_comm, fast_comm);
}

}  // namespace
}  // namespace pim::mnsim
