// Property-based tests: randomized inputs swept through the whole stack.
//
//  * random network DAGs (conv/pool/relu/add/concat/fc in random legal
//    combinations) compiled under random policy/fusion/replication and
//    simulated functionally — output must equal the host reference executor
//    bit for bit, and the simulation must terminate (deadlock freedom);
//  * random instruction words round-tripped through the binary encoder;
//  * random programs round-tripped through the assembler;
//  * vector-unit functional semantics fuzzed against scalar golden models.
#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "compiler/compiler.h"
#include "config/arch_config.h"
#include "isa/assembler.h"
#include "nn/executor.h"
#include "nn/models.h"
#include "runtime/simulator.h"

namespace pim {
namespace {

// ------------------------------------------------------- random network DAGs

/// Build a random small network: a trunk of conv/pool/relu ops with
/// occasional residual adds and concat branches, ending in GAP + FC.
nn::Graph random_network(uint64_t seed) {
  Rng rng(seed);
  nn::Graph g(strformat("rand_%llu", static_cast<unsigned long long>(seed)));
  const int32_t hw = static_cast<int32_t>(rng.uniform(6, 10));
  const int32_t c0 = static_cast<int32_t>(rng.uniform(2, 4));
  int32_t x = g.add_input({c0, hw, hw});

  const int ops = static_cast<int>(rng.uniform(3, 6));
  for (int i = 0; i < ops; ++i) {
    const nn::Shape cur = g.layer(x).out_shape;
    switch (rng.uniform(0, 5)) {
      case 0:
      case 1: {  // conv (+ relu half the time)
        const int32_t ch = static_cast<int32_t>(rng.uniform(2, 8));
        const int32_t k = rng.uniform(0, 1) != 0 && cur.h >= 3 ? 3 : 1;
        x = g.add_conv(x, ch, k, 1, k / 2);
        if (rng.uniform(0, 1) != 0) x = g.add_relu(x);
        break;
      }
      case 2: {  // pool, if it fits
        if (cur.h >= 4) {
          x = rng.uniform(0, 1) != 0 ? g.add_maxpool(x, 2, 2) : g.add_avgpool(x, 2, 2);
        }
        break;
      }
      case 3: {  // residual: conv->relu->conv, 1x1 skip, add
        const int32_t ch = static_cast<int32_t>(rng.uniform(2, 6));
        int32_t a = g.add_conv(x, ch, cur.h >= 3 ? 3 : 1, 1, cur.h >= 3 ? 1 : 0);
        a = g.add_relu(a);
        a = g.add_conv(a, ch, 1, 1, 0);
        int32_t skip = g.add_conv(x, ch, 1, 1, 0);
        x = g.add_add(a, skip);
        break;
      }
      case 4: {  // concat of two 1x1 branches
        const int32_t c1 = static_cast<int32_t>(rng.uniform(2, 4));
        const int32_t c2 = static_cast<int32_t>(rng.uniform(2, 4));
        int32_t a = g.add_conv(x, c1, 1, 1, 0);
        int32_t b = g.add_conv(x, c2, 1, 1, 0);
        x = g.add_concat({a, b});
        break;
      }
      default: {
        x = g.add_relu(x);
        break;
      }
    }
  }
  x = g.add_global_avgpool(x);
  g.add_fc(x, static_cast<int32_t>(rng.uniform(2, 10)));
  g.infer_shapes();
  g.init_parameters(seed ^ 0xBEEF);
  return g;
}

class RandomNetworkPipeline : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomNetworkPipeline, BitExactAndDeadlockFree) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 31 + 5);
  nn::Graph net = random_network(seed);

  config::ArchConfig cfg = config::ArchConfig::tiny();
  cfg.sim.functional = true;
  cfg.core.rob_size = static_cast<uint32_t>(rng.uniform(1, 24));

  compiler::CompileOptions copts;
  copts.policy = rng.uniform(0, 1) != 0 ? compiler::MappingPolicy::PerformanceFirst
                                        : compiler::MappingPolicy::UtilizationFirst;
  copts.fuse_relu = rng.uniform(0, 1) != 0;
  copts.replication = static_cast<uint32_t>(rng.uniform(1, 3));

  const nn::Layer& in_layer = net.layer(net.inputs().at(0));
  nn::Tensor input = nn::random_input(in_layer.out_shape, seed + 1);
  runtime::Report rep = runtime::simulate_network(net, cfg, copts, &input);
  ASSERT_TRUE(rep.finished) << "deadlock/timeout: " << rep.summary();

  nn::Tensor golden = nn::execute_reference_output(net, input);
  ASSERT_EQ(rep.output, golden.data)
      << net.name() << " policy=" << compiler::policy_name(copts.policy)
      << " fuse=" << copts.fuse_relu << " rob=" << cfg.core.rob_size
      << " repl=" << copts.replication;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetworkPipeline, ::testing::Range<uint64_t>(1, 21));

// --------------------------------------------------- encoder round-trip fuzz

isa::Instruction random_instruction(Rng& rng) {
  static const isa::Opcode ops[] = {
      isa::Opcode::MVM, isa::Opcode::VADD, isa::Opcode::VSUB, isa::Opcode::VMUL,
      isa::Opcode::VMAX, isa::Opcode::VMIN, isa::Opcode::VADDI, isa::Opcode::VMULI,
      isa::Opcode::VSHR, isa::Opcode::VDIVI, isa::Opcode::VRELU, isa::Opcode::VMOV,
      isa::Opcode::VSET, isa::Opcode::VQUANT, isa::Opcode::VDEQUANT, isa::Opcode::SEND,
      isa::Opcode::RECV, isa::Opcode::GLOAD, isa::Opcode::GSTORE, isa::Opcode::LDI,
      isa::Opcode::SADD, isa::Opcode::SADDI, isa::Opcode::JMP, isa::Opcode::BNE,
      isa::Opcode::NOP, isa::Opcode::HALT};
  isa::Instruction in;
  in.op = ops[rng.uniform(0, std::size(ops) - 1)];
  in.dtype = rng.uniform(0, 1) != 0 ? isa::DType::I32 : isa::DType::I8;
  switch (in.cls()) {
    case isa::InstrClass::Matrix:
      in.group = static_cast<uint16_t>(rng.uniform(0, 0xFFFF));
      in.dst_addr = static_cast<uint32_t>(rng.uniform(0, 0xFFFFFF));
      in.src1_addr = static_cast<uint32_t>(rng.uniform(0, 0xFFFFFF));
      in.len = static_cast<uint32_t>(rng.uniform(1, 0xFFFF));
      in.dtype = isa::DType::I8;
      break;
    case isa::InstrClass::Vector:
      in.dst_addr = static_cast<uint32_t>(rng.uniform(0, 0xFFFFF));
      in.len = static_cast<uint32_t>(rng.uniform(1, 0xFFF));
      if (in.op != isa::Opcode::VSET) {
        in.src1_addr = static_cast<uint32_t>(rng.uniform(0, 0xFFFFF));
      }
      if (isa::uses_vector_imm(in.op)) {
        in.imm = static_cast<int32_t>(rng.uniform(-(1 << 19), (1 << 19) - 1));
      } else if (in.op == isa::Opcode::VADD || in.op == isa::Opcode::VSUB ||
                 in.op == isa::Opcode::VMUL || in.op == isa::Opcode::VMAX ||
                 in.op == isa::Opcode::VMIN) {
        in.src2_addr = static_cast<uint32_t>(rng.uniform(0, 0xFFFFF));
      }
      break;
    case isa::InstrClass::Transfer:
      if (in.op == isa::Opcode::SEND || in.op == isa::Opcode::RECV) {
        // Tags exist only for the rendezvous pair ops; global-memory
        // transfers carry none (and the text format omits it).
        in.tag = static_cast<uint16_t>(rng.uniform(0, 0xFFFF));
        in.core = static_cast<uint16_t>(rng.uniform(0, 0xFFFF));
        in.len = static_cast<uint32_t>(rng.uniform(1, 0xFFFF));
        if (in.op == isa::Opcode::SEND) {
          in.src1_addr = static_cast<uint32_t>(rng.uniform(0, 0xFFFFF));
        } else {
          in.dst_addr = static_cast<uint32_t>(rng.uniform(0, 0xFFFFF));
        }
      } else {
        in.len = static_cast<uint32_t>(rng.uniform(1, 0xFFF));
        in.imm = static_cast<int32_t>(rng.uniform(INT32_MIN, INT32_MAX));
        if (in.op == isa::Opcode::GSTORE) {
          in.src1_addr = static_cast<uint32_t>(rng.uniform(0, 0xFFFFF));
        } else {
          in.dst_addr = static_cast<uint32_t>(rng.uniform(0, 0xFFFFF));
        }
      }
      break;
    case isa::InstrClass::Scalar:
      in.dtype = isa::DType::I8;
      if (in.op == isa::Opcode::LDI || in.op == isa::Opcode::SADDI) {
        in.rd = static_cast<uint8_t>(rng.uniform(0, 31));
        in.imm = static_cast<int32_t>(rng.uniform(INT32_MIN, INT32_MAX));
      }
      if (in.op == isa::Opcode::SADD) {
        in.rd = static_cast<uint8_t>(rng.uniform(0, 31));
        in.rs1 = static_cast<uint8_t>(rng.uniform(0, 31));
        in.rs2 = static_cast<uint8_t>(rng.uniform(0, 31));
      }
      if (in.op == isa::Opcode::SADDI || in.op == isa::Opcode::BNE) {
        in.rs1 = static_cast<uint8_t>(rng.uniform(0, 31));
      }
      if (in.op == isa::Opcode::BNE) {
        in.rs2 = static_cast<uint8_t>(rng.uniform(0, 31));
        in.imm = static_cast<int32_t>(rng.uniform(0, 1000));
      }
      if (in.op == isa::Opcode::JMP) in.imm = static_cast<int32_t>(rng.uniform(0, 1000));
      break;
  }
  return in;
}

TEST(EncodingFuzz, TenThousandRandomInstructionsRoundTrip) {
  Rng rng(0xC0DEC);
  for (int i = 0; i < 10000; ++i) {
    isa::Instruction in = random_instruction(rng);
    isa::Instruction out = isa::decode(isa::encode(in));
    ASSERT_EQ(out, in) << "iteration " << i << ": " << isa::to_string(in);
  }
}

TEST(AssemblerFuzz, RandomProgramsRoundTripThroughText) {
  Rng rng(0xA53);
  for (int trial = 0; trial < 50; ++trial) {
    isa::Program p;
    p.cores.resize(static_cast<size_t>(rng.uniform(1, 3)));
    for (auto& cp : p.cores) {
      const int n = static_cast<int>(rng.uniform(1, 12));
      for (int i = 0; i < n; ++i) {
        isa::Instruction in = random_instruction(rng);
        // Branch targets must be in range for the re-assembled program.
        if (in.op == isa::Opcode::JMP || in.op == isa::Opcode::BNE) {
          in.imm = static_cast<int32_t>(rng.uniform(0, n));
        }
        cp.code.push_back(in);
      }
      isa::Instruction halt;
      halt.op = isa::Opcode::HALT;
      cp.code.push_back(halt);
    }
    isa::Program back = isa::assemble(isa::disassemble(p));
    ASSERT_EQ(back.cores.size(), p.cores.size()) << "trial " << trial;
    for (size_t c = 0; c < p.cores.size(); ++c) {
      ASSERT_EQ(back.cores[c].code, p.cores[c].code) << "trial " << trial << " core " << c;
    }
  }
}

// ------------------------------------------------ vector semantics vs golden

TEST(VectorFuzz, QuantizeMatchesGoldenFormula) {
  Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.uniform(-100000, 100000);
    const int shift = static_cast<int>(rng.uniform(0, 12));
    const int8_t q = saturate_i8(rounded_shift_right(v, shift));
    // Inverse sanity: dequantized value within half a step (pre-saturation).
    if (q > -128 && q < 127) {
      EXPECT_LE(std::abs(v - (int64_t{q} << shift)), int64_t{1} << shift)
          << "v=" << v << " shift=" << shift;
    }
  }
}

TEST(VectorFuzz, RoundedShiftIdentities) {
  Rng rng(78);
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.uniform(-1000000, 1000000);
    EXPECT_EQ(rounded_shift_right(v, 0), v);
    EXPECT_EQ(rounded_shift_right(-v, 3), -rounded_shift_right(v, 3));  // odd symmetry
  }
}

}  // namespace
}  // namespace pim
