// pim::workload — spec parsing, the builder registry, graph-file
// round-trips (the equivalence oracle of the whole layer), malformed-graph
// rejection, and the workload-fingerprint cache-key contract.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "config/arch_config.h"
#include "dse/cache.h"
#include "dse/evaluator.h"
#include "dse/sampler.h"
#include "dse/search_space.h"
#include "nn/models.h"
#include "runtime/batch_runner.h"
#include "workload/workload.h"

namespace pim::workload {
namespace {

std::string temp_path(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "pim_workload";
  std::filesystem::create_directories(dir);
  return dir + "/" + name;
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream f(path);
  f << text;
  ASSERT_TRUE(f.good()) << path;
}

// ----------------------------------------------------------------- parsing

TEST(WorkloadSpecTest, TokenParsing) {
  const WorkloadSpec zoo = parse_workload_token("alexnet", 16);
  EXPECT_EQ(zoo.kind, Kind::Builtin);
  EXPECT_EQ(zoo.name, "alexnet");
  EXPECT_EQ(zoo.input_hw, 16);
  EXPECT_EQ(zoo.label(), "alexnet");

  const WorkloadSpec mlp = parse_workload_token("mlp", 8);
  EXPECT_EQ(mlp.kind, Kind::Mlp);
  EXPECT_EQ(mlp.label(), "mlp");
  EXPECT_EQ(mlp.input_hw, 8);

  const WorkloadSpec file = parse_workload_token("nets/res_block.json", 32, "/base");
  EXPECT_EQ(file.kind, Kind::GraphFile);
  EXPECT_EQ(file.path, "/base/nets/res_block.json");
  EXPECT_EQ(file.label(), "res_block");  // basename without extension
  // Absolute paths ignore base_dir.
  EXPECT_EQ(parse_workload_token("/abs/net.json", 32, "/base").path, "/abs/net.json");

  EXPECT_THROW(parse_workload_token("warp_net", 32), std::invalid_argument);
}

TEST(WorkloadSpecTest, JsonRoundTripAllKinds) {
  WorkloadSpec zoo = WorkloadSpec::builtin("resnet18", 16);
  zoo.weight_seed = 9;
  zoo.num_classes = 100;
  WorkloadSpec mlp = WorkloadSpec::mlp(8, {48, 24}, 12);
  WorkloadSpec file = WorkloadSpec::graph_file("/tmp/net.json");
  for (const WorkloadSpec& spec : {zoo, mlp, file}) {
    const WorkloadSpec back = WorkloadSpec::from_json(spec.to_json());
    EXPECT_EQ(back, spec) << spec.to_json().dump();
  }
}

TEST(WorkloadSpecTest, JsonObjectDefaultsAndInference) {
  WorkloadSpec defaults;
  defaults.input_hw = 8;
  // "kind" may be inferred from the distinguishing field.
  const WorkloadSpec file =
      WorkloadSpec::from_json(json::parse(R"({"path": "n.json"})"), "/d", defaults);
  EXPECT_EQ(file.kind, Kind::GraphFile);
  EXPECT_EQ(file.path, "/d/n.json");
  const WorkloadSpec mlp =
      WorkloadSpec::from_json(json::parse(R"({"hidden": [16]})"), "", defaults);
  EXPECT_EQ(mlp.kind, Kind::Mlp);
  EXPECT_EQ(mlp.mlp_hidden, (std::vector<int32_t>{16}));
  EXPECT_EQ(mlp.input_hw, 8);  // threaded through the defaults

  EXPECT_THROW(WorkloadSpec::from_json(json::parse(R"({"kind": "hologram"})")),
               std::invalid_argument);
  EXPECT_THROW(WorkloadSpec::from_json(json::parse(R"({"name": "warp_net"})")),
               std::invalid_argument);
  EXPECT_THROW(WorkloadSpec::from_json(json::parse(R"({"kind": "graph_file"})")),
               std::invalid_argument);  // no path
  EXPECT_THROW(WorkloadSpec::from_json(json::parse(R"({"name": "alexnet", "input_hw": 0})")),
               std::invalid_argument);
}

// ---------------------------------------------------------------- registry

TEST(RegistryTest, SubsumesTheModelZoo) {
  const std::vector<std::string> names = builtin_names();
  for (const std::string& zoo : nn::model_names()) {
    EXPECT_TRUE(Registry::instance().contains(zoo)) << zoo;
    EXPECT_NE(std::find(names.begin(), names.end(), zoo), names.end()) << zoo;
  }
  EXPECT_FALSE(Registry::instance().contains("lenet5000"));
  nn::ModelOptions mopt;
  mopt.input_hw = 8;
  mopt.init_params = false;
  EXPECT_THROW(Registry::instance().build("lenet5000", mopt), std::invalid_argument);
  // Registration guards: duplicates and reserved names are rejected.
  EXPECT_THROW(Registry::instance().add("tiny_cnn", nullptr), std::invalid_argument);
  EXPECT_THROW(Registry::instance().add("mlp", nullptr), std::invalid_argument);
  EXPECT_THROW(Registry::instance().add("net.json", nullptr), std::invalid_argument);
}

TEST(RegistryTest, ClientBuildersBecomeFirstClassWorkloads) {
  if (!Registry::instance().contains("test_linear")) {
    Registry::instance().add("test_linear", [](const nn::ModelOptions& opt) {
      nn::Graph g("test_linear");
      const int32_t in = g.add_input({opt.input_channels, opt.input_hw, opt.input_hw});
      const int32_t flat = g.add_flatten(in);
      g.add_fc(flat, opt.num_classes);
      g.infer_shapes();
      if (opt.init_params) g.init_parameters(opt.weight_seed);
      return g;
    });
  }
  // The registered name parses like any zoo name and builds.
  const WorkloadSpec spec = parse_workload_token("test_linear", 4);
  const BuiltWorkload wl = build(spec, /*init_params=*/false);
  EXPECT_EQ(wl.graph.name(), "test_linear");
  EXPECT_EQ(wl.input_shape, (nn::Shape{3, 4, 4}));
}

// ------------------------------------------------- round-trip (the oracle)

TEST(RoundTripTest, EveryZooModelTopologySurvivesExportReload) {
  // Topology-only export at the canonical 32x32 resolution: reloading must
  // reproduce the graph fingerprint bit-for-bit for every zoo network.
  for (const std::string& name : nn::model_names()) {
    nn::ModelOptions mopt;
    mopt.input_hw = 32;
    mopt.init_params = false;
    const nn::Graph g = nn::build_model(name, mopt);
    const std::string path = temp_path("zoo_" + name + ".json");
    export_graph(g, path, /*include_params=*/false);
    const nn::Graph back = load_graph(path);
    EXPECT_EQ(graph_fingerprint(back), graph_fingerprint(g)) << name;
    EXPECT_EQ(back.to_json(true).dump(), g.to_json(true).dump()) << name;
  }
}

TEST(RoundTripTest, ParameterizedExportIsBitIdentical) {
  nn::ModelOptions mopt;
  mopt.input_hw = 8;
  const nn::Graph g = nn::build_model("tiny_cnn", mopt);  // init_params on
  const std::string path = temp_path("tiny_params.json");
  export_graph(g, path, /*include_params=*/true);
  const nn::Graph back = load_graph(path);
  EXPECT_EQ(graph_fingerprint(back), graph_fingerprint(g));
  ASSERT_EQ(back.size(), g.size());
  for (size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(back.layers()[i].weights, g.layers()[i].weights);
    EXPECT_EQ(back.layers()[i].bias, g.layers()[i].bias);
    EXPECT_EQ(back.layers()[i].out_shift, g.layers()[i].out_shift);
  }
}

/// The acceptance oracle: a zoo model exported to a file and reloaded as a
/// GraphFile workload must produce a bit-identical Report to the builtin.
void expect_exported_matches_builtin(const std::string& name, int32_t hw, bool functional,
                                     const config::ArchConfig& arch) {
  const WorkloadSpec builtin = WorkloadSpec::builtin(name, hw);
  const BuiltWorkload built = build(builtin, /*init_params=*/functional);
  const std::string path = temp_path("report_" + name + ".json");
  export_graph(built.graph, path, /*include_params=*/functional);
  WorkloadSpec from_file = WorkloadSpec::graph_file(path);
  from_file.name = name;  // same label -> same derived scenario names

  const std::vector<runtime::Scenario> a = runtime::expand_sweep(
      {builtin}, {compiler::MappingPolicy::PerformanceFirst}, {1}, arch, functional);
  const std::vector<runtime::Scenario> b = runtime::expand_sweep(
      {from_file}, {compiler::MappingPolicy::PerformanceFirst}, {1}, arch, functional);
  const runtime::BatchResult ra = runtime::BatchRunner(1).run(a);
  const runtime::BatchResult rb = runtime::BatchRunner(1).run(b);
  ASSERT_TRUE(ra.all_ok()) << name << ": " << ra.results[0].error;
  ASSERT_TRUE(rb.all_ok()) << name << ": " << rb.results[0].error;
  const std::vector<std::string> diffs = runtime::compare_results(ra, rb);
  EXPECT_TRUE(diffs.empty()) << name << ": " << diffs.front();
}

TEST(RoundTripTest, ExportedZooModelsReproduceBuiltinReports) {
  // Timing-only runs on the paper's 64-core chip (the zoo does not fit the
  // 4-core tiny config): the Report — latency, energy, instruction stream —
  // must be bit-identical between the builtin and its exported file, for
  // every zoo network at a resolution its stem supports (the VGG stacks
  // pool five times, so they need 32x32).
  const config::ArchConfig paper = config::ArchConfig::paper_default();
  for (const auto& [name, hw] : std::initializer_list<std::pair<const char*, int32_t>>{
           {"tiny_cnn", 8}, {"alexnet", 8}, {"squeezenet", 8}, {"resnet18", 8},
           {"googlenet", 8}, {"vgg8", 32}, {"vgg16", 32}}) {
    expect_exported_matches_builtin(name, hw, /*functional=*/false, paper);
  }
}

TEST(RoundTripTest, FunctionalReportsMatchIncludingOutputs) {
  // With parameters in the file, the functional output must match too.
  expect_exported_matches_builtin("tiny_cnn", 8, /*functional=*/true,
                                  config::ArchConfig::tiny());
}

TEST(RoundTripTest, GraphFileOnlyNetworkRunsEndToEnd) {
  // A network that exists *only* as a description file — no builder, no
  // recompile — runs through the batch runner, deterministically.
  const std::string path = temp_path("filenet.json");
  write_text_file(path, R"({
    "name": "filenet",
    "layers": [
      {"type": "input", "shape": [3, 8, 8]},
      {"type": "conv", "inputs": [0], "out_channels": 8, "kernel": 3, "stride": 1, "pad": 1},
      {"type": "relu", "inputs": [1]},
      {"type": "global_avgpool", "inputs": [2]},
      {"type": "fc", "inputs": [3], "out_channels": 10}
    ]
  })");
  std::vector<runtime::Scenario> sweep = runtime::expand_sweep(
      {WorkloadSpec::graph_file(path)},
      {compiler::MappingPolicy::PerformanceFirst, compiler::MappingPolicy::UtilizationFirst},
      {1, 2}, config::ArchConfig::tiny(), /*functional=*/true);
  ASSERT_EQ(sweep.size(), 4u);
  EXPECT_EQ(sweep[0].name, "filenet/perf/b1");

  // Two different files sharing a basename must still get unique names.
  const std::string twin_dir = temp_path("twin");
  std::filesystem::create_directories(twin_dir);
  const std::string twin = twin_dir + "/filenet.json";
  std::filesystem::copy_file(path, twin, std::filesystem::copy_options::overwrite_existing);
  const std::vector<runtime::Scenario> twins = runtime::expand_sweep(
      {WorkloadSpec::graph_file(path), WorkloadSpec::graph_file(twin)},
      {compiler::MappingPolicy::PerformanceFirst}, {1}, config::ArchConfig::tiny(), false);
  ASSERT_EQ(twins.size(), 2u);
  EXPECT_EQ(twins[0].name, "filenet/perf/b1");
  EXPECT_EQ(twins[1].name, "filenet/perf/b1#2");
  const runtime::BatchResult parallel = runtime::BatchRunner(2).run(sweep);
  const runtime::BatchResult serial = runtime::BatchRunner(1).run(sweep);
  ASSERT_TRUE(parallel.all_ok()) << parallel.results[0].error;
  const std::vector<std::string> diffs = runtime::compare_results(parallel, serial);
  EXPECT_TRUE(diffs.empty()) << diffs.front();
  EXPECT_FALSE(parallel.results[0].report.output.empty());
}

// ------------------------------------------------------ malformed rejection

TEST(LoaderTest, RejectsMalformedGraphs) {
  const auto parse = [](const char* text) { return graph_from_json(json::parse(text)); };
  // Structurally not a graph.
  EXPECT_THROW(parse(R"({"name": "x"})"), std::invalid_argument);
  EXPECT_THROW(parse(R"({"layers": []})"), std::invalid_argument);
  EXPECT_THROW(parse(R"({"layers": [7]})"), std::invalid_argument);
  // Unknown op.
  EXPECT_THROW(parse(R"({"layers": [{"type": "warp"}]})"), std::invalid_argument);
  // Input layers: missing/malformed shape, or taking inputs.
  EXPECT_THROW(parse(R"({"layers": [{"type": "input"}]})"), std::invalid_argument);
  EXPECT_THROW(parse(R"({"layers": [{"type": "input", "shape": [3, 8]}]})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"layers": [{"type": "input", "shape": [3, 0, 8]}]})"),
               std::invalid_argument);
  // Non-input layer without inputs; wrong arity; unknown producer id.
  EXPECT_THROW(parse(R"({"layers": [{"type": "input", "shape": [3, 8, 8]},
                                    {"type": "relu"}]})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"layers": [{"type": "input", "shape": [3, 8, 8]},
                                    {"type": "add", "inputs": [0]}]})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"layers": [{"type": "input", "shape": [3, 8, 8]},
                                    {"type": "relu", "inputs": [5]}]})"),
               std::invalid_argument);
  // Forward reference (cycles are impossible to express, and rejected).
  EXPECT_THROW(parse(R"({"layers": [{"type": "input", "shape": [3, 8, 8]},
                                    {"type": "relu", "inputs": [2]},
                                    {"type": "relu", "inputs": [1]}]})"),
               std::invalid_argument);
  // An "id" disagreeing with the layer's position would silently rewire.
  EXPECT_THROW(parse(R"({"layers": [{"id": 3, "type": "input", "shape": [3, 8, 8]}]})"),
               std::invalid_argument);
  // Conv/fc geometry.
  EXPECT_THROW(parse(R"({"layers": [{"type": "input", "shape": [3, 8, 8]},
                                    {"type": "conv", "inputs": [0], "kernel": 3}]})"),
               std::invalid_argument);  // no out_channels
  EXPECT_THROW(parse(R"({"layers": [{"type": "input", "shape": [3, 8, 8]},
                                    {"type": "conv", "inputs": [0], "out_channels": 8}]})"),
               std::invalid_argument);  // no kernel
  // Window larger than the input (shape inference).
  EXPECT_THROW(parse(R"({"layers": [{"type": "input", "shape": [3, 4, 4]},
                                    {"type": "maxpool", "inputs": [0], "kernel": 8,
                                     "stride": 8}]})"),
               std::invalid_argument);
  // stride = 0 used to SIGFPE inside shape inference; negative pad is nonsense.
  EXPECT_THROW(parse(R"({"layers": [{"type": "input", "shape": [3, 8, 8]},
                                    {"type": "conv", "inputs": [0], "out_channels": 4,
                                     "kernel": 3, "stride": 0}]})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"layers": [{"type": "input", "shape": [3, 8, 8]},
                                    {"type": "maxpool", "inputs": [0], "kernel": 2,
                                     "stride": 2, "pad": -1}]})"),
               std::invalid_argument);
  // Parameter arrays must agree with the geometry and come in pairs.
  EXPECT_THROW(parse(R"({"layers": [{"type": "input", "shape": [2, 1, 1]},
                                    {"type": "fc", "inputs": [0], "out_channels": 2,
                                     "weights": [1, 2, 3], "bias": [0, 0]}]})"),
               std::invalid_argument);  // 3 weights, geometry needs 4
  EXPECT_THROW(parse(R"({"layers": [{"type": "input", "shape": [2, 1, 1]},
                                    {"type": "fc", "inputs": [0], "out_channels": 2,
                                     "weights": [1, 2, 3, 4]}]})"),
               std::invalid_argument);  // weights without bias
  // Half-parameterized graphs cannot run functionally or be re-seeded.
  EXPECT_THROW(parse(R"({"layers": [{"type": "input", "shape": [2, 1, 1]},
                                    {"type": "fc", "inputs": [0], "out_channels": 2,
                                     "weights": [1, 2, 3, 4], "bias": [0, 0]},
                                    {"type": "fc", "inputs": [1], "out_channels": 2}]})"),
               std::invalid_argument);

  // A good description still parses (sanity check on the battery above).
  const nn::Graph ok = parse(R"({"layers": [
    {"type": "input", "shape": [2, 1, 1]},
    {"type": "fc", "inputs": [0], "out_channels": 2,
     "weights": [1, 2, 3, 4], "bias": [0, 0], "out_shift": 2}
  ]})");
  EXPECT_EQ(ok.size(), 2u);

  // load_graph prefixes the path on file-level failures.
  EXPECT_THROW(load_graph("/nonexistent/net.json"), std::invalid_argument);
}

// ------------------------------------------------------- fingerprint / cache

TEST(FingerprintTest, TracksEverySpecParameter) {
  const WorkloadSpec base = WorkloadSpec::builtin("tiny_cnn", 8);
  WorkloadSpec seed = base;
  seed.weight_seed = 2;
  WorkloadSpec hw = base;
  hw.input_hw = 16;
  WorkloadSpec classes = base;
  classes.num_classes = 100;
  EXPECT_NE(base.fingerprint(), seed.fingerprint());
  EXPECT_NE(base.fingerprint(), hw.fingerprint());
  EXPECT_NE(base.fingerprint(), classes.fingerprint());
  EXPECT_NE(base.fingerprint(), WorkloadSpec::builtin("alexnet", 8).fingerprint());
  EXPECT_NE(base.fingerprint(), WorkloadSpec::mlp(8).fingerprint());
  // Deterministic across calls.
  EXPECT_EQ(base.fingerprint(), WorkloadSpec::builtin("tiny_cnn", 8).fingerprint());
}

TEST(FingerprintTest, WeightSeedOnlyCountsWhenItCanMatter) {
  // A parameter-bearing file ignores the spec's weight_seed at build time,
  // so two seeds over it are the *same* simulation and must share one
  // fingerprint; a topology-only file re-seeds, so there the seed counts.
  nn::ModelOptions mopt;
  mopt.input_hw = 8;
  const nn::Graph g = nn::build_model("tiny_cnn", mopt);  // params included
  const std::string with_params = temp_path("fp_with_params.json");
  const std::string topo_only = temp_path("fp_topo_only.json");
  export_graph(g, with_params, /*include_params=*/true);
  export_graph(g, topo_only, /*include_params=*/false);

  WorkloadSpec a = WorkloadSpec::graph_file(with_params);
  WorkloadSpec b = a;
  b.weight_seed = 2;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  WorkloadSpec c = WorkloadSpec::graph_file(topo_only);
  WorkloadSpec d = c;
  d.weight_seed = 2;
  EXPECT_NE(c.fingerprint(), d.fingerprint());
}

TEST(FingerprintTest, CacheKeyChangesOnFileEditNeverOnMoveOrReformat) {
  // The ISSUE-level contract: editing a graph file changes the dse cache
  // key (a guaranteed miss); moving or reformatting the file does not
  // (gratuitous misses are cheap, stale hits are not — but a no-op rewrite
  // should still hit).
  const std::string path = temp_path("cachekey.json");
  const char* original = R"({
    "name": "ck",
    "layers": [
      {"type": "input", "shape": [3, 8, 8]},
      {"type": "conv", "inputs": [0], "out_channels": 8, "kernel": 3, "stride": 1, "pad": 1}
    ]
  })";
  write_text_file(path, original);

  runtime::Scenario sc;
  sc.workload = WorkloadSpec::graph_file(path);
  sc.arch = config::ArchConfig::tiny();
  const std::string key_original = dse::scenario_key(sc);

  // Semantic edit: different channel count -> different key.
  write_text_file(path, R"({
    "name": "ck",
    "layers": [
      {"type": "input", "shape": [3, 8, 8]},
      {"type": "conv", "inputs": [0], "out_channels": 16, "kernel": 3, "stride": 1, "pad": 1}
    ]
  })");
  const std::string key_edited = dse::scenario_key(sc);
  EXPECT_NE(key_edited, key_original);

  // Reformat-only rewrite (same content, different whitespace) -> same key.
  write_text_file(path,
                  R"({"name":"ck","layers":[{"type":"input","shape":[3,8,8]},)"
                  R"({"type":"conv","inputs":[0],"out_channels":8,"kernel":3,)"
                  R"("stride":1,"pad":1}]})");
  EXPECT_EQ(dse::scenario_key(sc), key_original);

  // Moving the file keeps the key: the content is the identity, not the path.
  const std::string moved = temp_path("cachekey_moved.json");
  std::filesystem::copy_file(path, moved,
                             std::filesystem::copy_options::overwrite_existing);
  runtime::Scenario sc_moved = sc;
  sc_moved.workload = WorkloadSpec::graph_file(moved);
  EXPECT_EQ(dse::scenario_key(sc_moved), key_original);
}

TEST(FingerprintTest, DseCacheInvalidatesOnFileEdit) {
  // End to end through the evaluator: evaluate, edit the workload file,
  // re-evaluate — the edited run must miss (fresh simulation), and editing
  // back must hit the original entries again.
  const std::string path = temp_path("dse_edit.json");
  const char* small_net = R"({
    "name": "editnet",
    "layers": [
      {"type": "input", "shape": [3, 4, 4]},
      {"type": "flatten", "inputs": [0]},
      {"type": "fc", "inputs": [1], "out_channels": 8}
    ]
  })";
  const char* edited_net = R"({
    "name": "editnet",
    "layers": [
      {"type": "input", "shape": [3, 4, 4]},
      {"type": "flatten", "inputs": [0]},
      {"type": "fc", "inputs": [1], "out_channels": 16}
    ]
  })";
  write_text_file(path, small_net);

  const std::string cache_dir = temp_path("dse_edit_cache");
  std::filesystem::remove_all(cache_dir);
  const json::Value space_json = json::parse(R"({
    "name": "edit-space",
    "base": "tiny",
    "model": ")" + path + R"(",
    "knobs": {"rob_size": [4, 8]}
  })");
  const dse::SearchSpace space = dse::SearchSpace::from_json(space_json);
  ASSERT_EQ(space.workload.kind, Kind::GraphFile);
  const std::vector<dse::Point> pts = dse::make_sampler("grid", space)->propose(SIZE_MAX, {});
  ASSERT_EQ(pts.size(), 2u);

  dse::Evaluator cold(space, 1, cache_dir);
  cold.evaluate(pts);
  EXPECT_EQ(cold.cache_stats().misses, 2u);

  write_text_file(path, edited_net);
  dse::Evaluator after_edit(space, 1, cache_dir);
  after_edit.evaluate(pts);
  EXPECT_EQ(after_edit.cache_stats().hits, 0u) << "stale hit against an edited workload file";
  EXPECT_EQ(after_edit.cache_stats().misses, 2u);

  write_text_file(path, small_net);
  dse::Evaluator back(space, 1, cache_dir);
  back.evaluate(pts);
  EXPECT_EQ(back.cache_stats().hits, 2u);
  EXPECT_EQ(back.cache_stats().misses, 0u);
}

TEST(FingerprintTest, EquivalentPointsSimulateOnceWithinABatch) {
  // An input_hw sweep over a graph-file workload cannot change the
  // simulation (the file fixes its own resolution), so the three points
  // share one cache key: one simulation, two in-batch aliases reported as
  // hits, and identical metrics on all three.
  const std::string path = temp_path("dedup.json");
  write_text_file(path, R"({
    "name": "dedupnet",
    "layers": [
      {"type": "input", "shape": [3, 4, 4]},
      {"type": "flatten", "inputs": [0]},
      {"type": "fc", "inputs": [1], "out_channels": 6}
    ]
  })");
  const json::Value space_json = json::parse(R"({
    "base": "tiny",
    "model": ")" + path + R"(",
    "knobs": {"input_hw": [8, 16, 32]}
  })");
  const dse::SearchSpace space = dse::SearchSpace::from_json(space_json);
  dse::Evaluator ev(space, 1, "");
  const std::vector<dse::EvaluatedPoint> res =
      ev.evaluate(dse::make_sampler("grid", space)->propose(SIZE_MAX, {}));
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(ev.cache_stats().misses, 1u);
  EXPECT_EQ(ev.cache_stats().hits, 2u);
  for (const dse::EvaluatedPoint& p : res) {
    ASSERT_TRUE(p.feasible && p.ok) << p.error;
    EXPECT_EQ(p.metrics.to_json().dump(), res[0].metrics.to_json().dump());
  }
}

TEST(FingerprintTest, FileEditedMidRunIsNotCachedUnderTheStaleKey) {
  // Keys are computed up front, simulations run after — a file edited in
  // that window must never poison the cache. The evaluator resolves the
  // graph once while keying and pins it on the scenario, so every point
  // simulates exactly the content its key names: the edit cannot leak into
  // the batch at all, and both stored entries stay valid for the original
  // content.
  const std::string path = temp_path("midrun.json");
  const std::string net_a = R"({
    "name": "midrun",
    "layers": [
      {"type": "input", "shape": [3, 4, 4]},
      {"type": "flatten", "inputs": [0]},
      {"type": "fc", "inputs": [1], "out_channels": 8}
    ]
  })";
  const std::string net_b = R"({
    "name": "midrun",
    "layers": [
      {"type": "input", "shape": [3, 4, 4]},
      {"type": "flatten", "inputs": [0]},
      {"type": "fc", "inputs": [1], "out_channels": 16}
    ]
  })";
  write_text_file(path, net_a);
  const std::string cache_dir = temp_path("midrun_cache");
  std::filesystem::remove_all(cache_dir);

  const dse::SearchSpace space = dse::SearchSpace::from_json(json::parse(R"({
    "base": "tiny",
    "model": ")" + path + R"(",
    "knobs": {"rob_size": [4, 8]}
  })"));
  const std::vector<dse::Point> pts = dse::make_sampler("grid", space)->propose(SIZE_MAX, {});
  ASSERT_EQ(pts.size(), 2u);

  // Uncached reference on the original content.
  dse::Evaluator ref(space, 1, "");
  const std::vector<dse::EvaluatedPoint> want = ref.evaluate(pts);
  ASSERT_EQ(want.size(), 2u);

  // jobs=1 serializes the two simulations; the file is swapped after the
  // first result lands, while the second point's key (built on net_a) is
  // still pending.
  dse::Evaluator ev(space, 1, cache_dir);
  ev.set_progress([&](const dse::EvaluatedPoint&, size_t done, size_t) {
    if (done == 1) write_text_file(path, net_b);
  });
  const std::vector<dse::EvaluatedPoint> hostile = ev.evaluate(pts);
  EXPECT_EQ(ev.cache_stats().misses, 2u);
  for (size_t i = 0; i < hostile.size(); ++i) {
    EXPECT_EQ(hostile[i].metrics.to_json().dump(), want[i].metrics.to_json().dump())
        << "point " << i << " simulated the edited content";
  }

  // Back on the original content, both entries are valid and hit.
  write_text_file(path, net_a);
  dse::Evaluator after(space, 1, cache_dir);
  const std::vector<dse::EvaluatedPoint> res = after.evaluate(pts);
  EXPECT_EQ(after.cache_stats().hits, 2u);
  EXPECT_EQ(after.cache_stats().misses, 0u);
  for (size_t i = 0; i < res.size(); ++i) {
    ASSERT_TRUE(res[i].feasible && res[i].ok) << res[i].error;
    EXPECT_EQ(res[i].metrics.to_json().dump(), want[i].metrics.to_json().dump());
  }
}

TEST(FingerprintTest, VanishedFileDegradesToInfeasiblePoint) {
  const std::string path = temp_path("vanishing.json");
  write_text_file(path, R"({
    "layers": [
      {"type": "input", "shape": [3, 4, 4]},
      {"type": "flatten", "inputs": [0]},
      {"type": "fc", "inputs": [1], "out_channels": 4}
    ]
  })");
  const json::Value space_json = json::parse(R"({
    "base": "tiny",
    "model": ")" + path + R"(",
    "knobs": {"rob_size": [4]}
  })");
  const dse::SearchSpace space = dse::SearchSpace::from_json(space_json);
  std::filesystem::remove(path);  // gone between load and evaluate
  dse::Evaluator ev(space, 1, "");
  const std::vector<dse::EvaluatedPoint> res =
      ev.evaluate(dse::make_sampler("grid", space)->propose(SIZE_MAX, {}));
  ASSERT_EQ(res.size(), 1u);
  EXPECT_FALSE(res[0].feasible);
  EXPECT_NE(res[0].error.find("vanishing.json"), std::string::npos) << res[0].error;
}

// --------------------------------------------------------- dse integration

TEST(DseWorkloadTest, ModelKnobRangesOverGraphFiles) {
  const std::string path = temp_path("knobnet.json");
  write_text_file(path, R"({
    "name": "knobnet",
    "layers": [
      {"type": "input", "shape": [3, 4, 4]},
      {"type": "flatten", "inputs": [0]},
      {"type": "fc", "inputs": [1], "out_channels": 6}
    ]
  })");
  const json::Value space_json = json::parse(R"({
    "base": "tiny",
    "model": "mlp",
    "input_hw": 4,
    "knobs": {
      "model": ["mlp", ")" + path + R"("],
      "weight_seed": [1, 2],
      "rob_size": [4]
    }
  })");
  const dse::SearchSpace space = dse::SearchSpace::from_json(space_json);
  const std::vector<dse::Point> pts = dse::make_sampler("grid", space)->propose(SIZE_MAX, {});
  ASSERT_EQ(pts.size(), 4u);
  size_t files = 0, mlps = 0;
  for (const dse::Point& p : pts) {
    const dse::MaterializedPoint m = dse::materialize(space, p);
    ASSERT_TRUE(m.feasible) << m.error;
    if (m.scenario.workload.kind == Kind::GraphFile) {
      ++files;
      EXPECT_EQ(m.scenario.workload.path, path);
      EXPECT_EQ(m.scenario.workload.label(), "knobnet");
    } else {
      ++mlps;
      EXPECT_EQ(m.scenario.workload.kind, Kind::Mlp);
      EXPECT_EQ(m.scenario.workload.input_hw, 4);
    }
    // The weight_seed knob lands on the workload regardless of kind.
    EXPECT_EQ(m.scenario.workload.weight_seed,
              static_cast<uint64_t>(p.at("weight_seed").as_int()));
  }
  EXPECT_EQ(files, 2u);
  EXPECT_EQ(mlps, 2u);

  // A space whose "model" knob names a broken file fails at load time.
  const std::string broken = temp_path("broken.json");
  write_text_file(broken, R"({"layers": [{"type": "warp"}]})");
  const json::Value bad = json::parse(R"({
    "base": "tiny",
    "knobs": {"model": [")" + broken + R"("]}
  })");
  EXPECT_THROW(dse::SearchSpace::from_json(bad), std::invalid_argument);
}

TEST(DseWorkloadTest, ModelKnobPreservesCustomMlpHidden) {
  // Regression: the "model" knob swap must keep the space's custom mlp
  // stack, not silently reset it to the default {64, 32}.
  const dse::SearchSpace space = dse::SearchSpace::from_json(json::parse(R"({
    "base": "tiny",
    "workload": {"kind": "mlp", "hidden": [128], "input_hw": 4},
    "knobs": {"model": ["mlp", "tiny_cnn"], "rob_size": [4]}
  })"));
  const dse::MaterializedPoint m = dse::materialize(
      space, dse::Point{{"model", json::Value("mlp")}, {"rob_size", json::Value(4)}});
  ASSERT_TRUE(m.feasible) << m.error;
  EXPECT_EQ(m.scenario.workload.kind, Kind::Mlp);
  EXPECT_EQ(m.scenario.workload.mlp_hidden, (std::vector<int32_t>{128}));
}

TEST(DseWorkloadTest, SpaceLevelWorkloadObjectParses) {
  const json::Value space_json = json::parse(R"({
    "base": "tiny",
    "workload": {"kind": "mlp", "hidden": [16, 8], "input_hw": 4},
    "knobs": {"rob_size": [4, 8]}
  })");
  const dse::SearchSpace space = dse::SearchSpace::from_json(space_json);
  EXPECT_EQ(space.workload.kind, Kind::Mlp);
  EXPECT_EQ(space.workload.mlp_hidden, (std::vector<int32_t>{16, 8}));
  EXPECT_EQ(space.workload.input_hw, 4);
  // "workload" and legacy "model" are mutually exclusive.
  EXPECT_THROW(dse::SearchSpace::from_json(json::parse(R"({
    "base": "tiny", "model": "mlp", "workload": "mlp", "knobs": {"rob_size": [4]}
  })")),
               std::invalid_argument);
}

}  // namespace
}  // namespace pim::workload
