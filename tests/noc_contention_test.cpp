// Physical NoC checks: link contention serializes flows that share a link,
// disjoint flows proceed in parallel, and hop distance shows up in latency.
#include <gtest/gtest.h>

#include "arch/chip.h"
#include "config/arch_config.h"
#include "isa/assembler.h"

namespace pim::arch {
namespace {

using isa::DType;
using isa::Instruction;
using isa::Opcode;
using isa::Program;

/// 3x3 mesh for richer routing.
config::ArchConfig mesh9() {
  config::ArchConfig cfg = config::ArchConfig::tiny();
  cfg.core_count = 9;
  cfg.mesh_width = 3;
  cfg.mesh_height = 3;
  cfg.validate();
  return cfg;
}

Instruction make_send(uint16_t dst, uint16_t tag, uint32_t len) {
  Instruction in;
  in.op = Opcode::SEND;
  in.core = dst;
  in.tag = tag;
  in.src1_addr = 0;
  in.len = len;
  return in;
}

Instruction make_recv(uint16_t src, uint16_t tag, uint32_t len) {
  Instruction in;
  in.op = Opcode::RECV;
  in.core = src;
  in.tag = tag;
  in.dst_addr = 0x100;
  in.len = len;
  return in;
}

Instruction halt() {
  Instruction in;
  in.op = Opcode::HALT;
  return in;
}

/// One message src -> dst of `len` bytes; returns completion time.
sim::Time one_flow(uint16_t src, uint16_t dst, uint32_t len) {
  Program p;
  p.cores.resize(9);
  p.cores[src].code = {make_send(dst, 0, len), halt()};
  p.cores[dst].code = {make_recv(src, 0, len), halt()};
  Chip chip(mesh9(), p);
  return chip.run().total_ps;
}

TEST(NocContention, LatencyGrowsWithHops) {
  // core 0 -> 1 (1 hop) vs core 0 -> 8 (4 hops), same payload.
  const sim::Time near = one_flow(0, 1, 256);
  const sim::Time far = one_flow(0, 8, 256);
  EXPECT_GT(far, near);
}

TEST(NocContention, LatencyGrowsWithPayload) {
  EXPECT_GT(one_flow(0, 8, 4096), one_flow(0, 8, 64));
}

TEST(NocContention, SharedLinkDelaysTheVictimFlow) {
  // Mesh ids: 0 1 2 / 3 4 5 / 6 7 8. XY routing.
  // Victim: core 0 sends a small message to core 2 (links 0->1, 1->2).
  // Bulk flow: a huge message that either crosses link 1->2 too (1 -> 5:
  // links 1->2, 2->5) or stays out of the way (6 -> 8). The victim's sender
  // must halt much later when the bulk flow occupies its link.
  auto victim_halt = [](uint16_t bulk_src, uint16_t bulk_dst) {
    Program p;
    p.cores.resize(9);
    // The victim spins ~700 cycles first so its message arrives while the
    // bulk flow (which pays a ~514-cycle local-memory read before touching
    // the mesh) occupies the shared link.
    p.cores[0].code = isa::assemble(R"(
        ldi r1, 350
        ldi r2, 0
      loop:
        saddi r2, r2, 1
        bne r2, r1, loop
    )").cores[0].code;
    p.cores[0].code.push_back(make_send(2, 0, 64));
    p.cores[0].code.push_back(halt());
    p.cores[2].code = {make_recv(0, 0, 64), halt()};
    p.cores[bulk_src].code = {make_send(bulk_dst, 0, 32768), halt()};
    p.cores[bulk_dst].code = {make_recv(bulk_src, 0, 32768), halt()};
    Chip chip(mesh9(), p);
    RunStats stats = chip.run();
    EXPECT_TRUE(chip.finished());
    return stats.cores[0].halt_time_ps;
  };
  const sim::Time contended = victim_halt(1, 5);
  const sim::Time clear = victim_halt(6, 8);
  // The blocked link costs the victim hundreds of extra NoC cycles.
  EXPECT_GT(contended, clear + 100'000);  // +100 ns at 1 GHz = 100 cycles
}

TEST(NocContention, ManyToOneFunnelsThroughReceiver) {
  // Cores 1..4 all send to core 0; the receiver's transfer unit and its
  // incoming links force near-serial delivery.
  Program p;
  p.cores.resize(9);
  const uint32_t len = 2048;
  for (uint16_t s = 1; s <= 4; ++s) {
    p.cores[s].code = {make_send(0, 0, len), halt()};
    p.cores[0].code.push_back(make_recv(s, 0, len));
  }
  p.cores[0].code.push_back(halt());
  Chip chip(mesh9(), p);
  const sim::Time fan_in = chip.run().total_ps;
  EXPECT_TRUE(chip.finished());
  // Must cost at least ~4x a single flow's serialization.
  const sim::Time single = one_flow(1, 0, len);
  EXPECT_GT(fan_in, 3 * single);
}

TEST(NocContention, ByteHopAccountingMatchesRoutes) {
  Program p;
  p.cores.resize(9);
  p.cores[0].code = {make_send(8, 0, 100), halt()};  // 4 hops
  p.cores[8].code = {make_recv(0, 0, 100), halt()};
  Chip chip(mesh9(), p);
  chip.run();
  EXPECT_EQ(chip.noc().total_byte_hops(), 400u);
  EXPECT_EQ(chip.noc().total_messages(), 1u);
}

TEST(NocContention, SelfSendIsRejectedByTheVerifier) {
  // A rendezvous with oneself can never complete (the core's transfer unit
  // executes one instruction at a time, and the SEND holds it while waiting
  // for the RECV queued behind it). The verifier must reject such programs;
  // local copies use VMOV.
  Program p;
  p.cores.resize(9);
  p.cores[4].code = {make_send(4, 0, 4), make_recv(4, 0, 4), halt()};
  auto errors = p.verify(mesh9());
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("issuing core"), std::string::npos);
  EXPECT_THROW(Chip(mesh9(), p), std::invalid_argument);
}

}  // namespace
}  // namespace pim::arch
