// Unit tests for the compiler: mapping policies, tiling arithmetic, group
// tables, code generation invariants, fusion, determinism.
#include <gtest/gtest.h>

#include <set>

#include "compiler/compiler.h"
#include "config/arch_config.h"
#include "nn/models.h"

namespace pim::compiler {
namespace {

nn::Graph small_net(int hw = 8) {
  nn::ModelOptions mopt;
  mopt.input_hw = hw;
  return nn::build_tiny_cnn(mopt);
}

TEST(Mapping, TilingMatchesCeilArithmetic) {
  nn::ModelOptions mopt;
  mopt.input_hw = 32;
  mopt.init_params = false;
  nn::Graph g = nn::build_alexnet(mopt);
  config::ArchConfig cfg = config::ArchConfig::paper_default();
  Mapping m = plan_mapping(g, cfg, MappingPolicy::PerformanceFirst);
  for (const LayerPlan& lp : m.layers) {
    const nn::Layer& l = g.layer(lp.layer);
    EXPECT_EQ(lp.rows, static_cast<uint32_t>(l.weight_rows()));
    EXPECT_EQ(lp.cols, static_cast<uint32_t>(l.weight_cols()));
    EXPECT_EQ(lp.stripes, (lp.rows + 127) / 128);
    EXPECT_EQ(lp.col_blocks, (lp.cols + 127) / 128);
    EXPECT_EQ(lp.total_xbars(), lp.stripes * lp.col_blocks);
    // Groups cover the whole matrix exactly once.
    uint64_t covered = 0;
    for (const GroupPlan& gp : lp.groups) {
      EXPECT_LE(gp.in_len(), 128u);
      EXPECT_GT(gp.in_len(), 0u);
      covered += uint64_t{gp.in_len()} * gp.out_len();
    }
    EXPECT_EQ(covered, uint64_t{lp.rows} * lp.cols);
  }
}

TEST(Mapping, PerformanceFirstKeepsOneLayerPerCore) {
  nn::ModelOptions mopt;
  mopt.input_hw = 32;
  mopt.init_params = false;
  nn::Graph g = nn::build_resnet18(mopt);
  config::ArchConfig cfg = config::ArchConfig::paper_default();
  Mapping m = plan_mapping(g, cfg, MappingPolicy::PerformanceFirst);
  EXPECT_EQ(m.shared_core_count(), 0u);
  for (uint32_t c : m.matrix_layer_count) EXPECT_LE(c, 1u);
}

TEST(Mapping, UtilizationFirstPacksTightly) {
  nn::ModelOptions mopt;
  mopt.input_hw = 32;
  mopt.init_params = false;
  nn::Graph g = nn::build_resnet18(mopt);
  config::ArchConfig cfg = config::ArchConfig::paper_default();
  Mapping util = plan_mapping(g, cfg, MappingPolicy::UtilizationFirst);
  Mapping perf = plan_mapping(g, cfg, MappingPolicy::PerformanceFirst);
  auto used_cores = [](const Mapping& m) {
    uint32_t n = 0;
    for (uint32_t x : m.xbars_used) {
      if (x) ++n;
    }
    return n;
  };
  EXPECT_LT(used_cores(util), used_cores(perf));
  EXPECT_GE(util.shared_core_count(), 1u);
  // Total crossbars identical across policies.
  uint32_t total_u = 0, total_p = 0;
  for (uint32_t x : util.xbars_used) total_u += x;
  for (uint32_t x : perf.xbars_used) total_p += x;
  EXPECT_EQ(total_u, total_p);
}

TEST(Mapping, RespectsCoreCapacity) {
  nn::ModelOptions mopt;
  mopt.input_hw = 32;
  mopt.init_params = false;
  nn::Graph g = nn::build_vgg16(mopt);
  config::ArchConfig cfg = config::ArchConfig::paper_default();
  for (MappingPolicy p : {MappingPolicy::UtilizationFirst, MappingPolicy::PerformanceFirst}) {
    Mapping m = plan_mapping(g, cfg, p);
    for (uint32_t x : m.xbars_used) EXPECT_LE(x, cfg.core.matrix.xbar_count);
  }
}

TEST(Mapping, ThrowsWhenChipTooSmall) {
  nn::ModelOptions mopt;
  mopt.input_hw = 32;
  mopt.init_params = false;
  nn::Graph g = nn::build_vgg16(mopt);  // ~1000 crossbars
  config::ArchConfig cfg = config::ArchConfig::tiny();  // 4 cores x 16 xbars
  EXPECT_THROW(plan_mapping(g, cfg, MappingPolicy::UtilizationFirst), std::runtime_error);
}

TEST(Mapping, GroupIdsUniquePerCore) {
  nn::ModelOptions mopt;
  mopt.input_hw = 32;
  mopt.init_params = false;
  nn::Graph g = nn::build_googlenet(mopt);
  config::ArchConfig cfg = config::ArchConfig::paper_default();
  Mapping m = plan_mapping(g, cfg, MappingPolicy::UtilizationFirst);
  std::map<uint16_t, std::set<uint16_t>> per_core;
  for (const LayerPlan& lp : m.layers) {
    for (const GroupPlan& gp : lp.groups) {
      EXPECT_TRUE(per_core[gp.core].insert(gp.group_id).second)
          << "duplicate group id " << gp.group_id << " on core " << gp.core;
    }
  }
}

TEST(Mapping, SummaryMentionsPolicy) {
  nn::Graph g = small_net();
  config::ArchConfig cfg = config::ArchConfig::tiny();
  Mapping m = plan_mapping(g, cfg, MappingPolicy::PerformanceFirst);
  EXPECT_NE(m.summary().find("performance_first"), std::string::npos);
}

// ------------------------------------------------------------------- codegen

TEST(Codegen, ProgramPassesVerification) {
  nn::Graph g = small_net();
  config::ArchConfig cfg = config::ArchConfig::tiny();
  CompileReport rep;
  isa::Program p = compile(g, cfg, {}, &rep);
  EXPECT_TRUE(p.verify(cfg).empty());
  EXPECT_GT(rep.total_instructions, 0u);
  EXPECT_GT(rep.mvm_instructions, 0u);
  EXPECT_GT(rep.lm_bytes_peak, 0u);
}

TEST(Codegen, MvmCountMatchesPixelsTimesGroups) {
  nn::Graph g = small_net();
  config::ArchConfig cfg = config::ArchConfig::tiny();
  CompileReport rep;
  compile(g, cfg, {}, &rep);
  size_t expected = 0;
  Mapping m = plan_mapping(g, cfg, MappingPolicy::PerformanceFirst);
  for (const LayerPlan& lp : m.layers) {
    const nn::Layer& l = g.layer(lp.layer);
    expected += static_cast<size_t>(l.out_shape.h) * l.out_shape.w * lp.groups.size();
  }
  EXPECT_EQ(rep.mvm_instructions, expected);
}

TEST(Codegen, DeterministicOutput) {
  nn::Graph g = small_net();
  config::ArchConfig cfg = config::ArchConfig::tiny();
  isa::Program a = compile(g, cfg, {});
  isa::Program b = compile(g, cfg, {});
  EXPECT_EQ(a, b);
}

TEST(Codegen, GroupTableHoldsWeightSlices) {
  nn::Graph g = small_net();
  config::ArchConfig cfg = config::ArchConfig::tiny();
  isa::Program p = compile(g, cfg, {});
  size_t weight_elems = 0;
  for (const isa::CoreProgram& cp : p.cores) {
    for (const isa::GroupDef& gd : cp.groups) {
      EXPECT_EQ(gd.weights.size(), size_t{gd.in_len} * gd.out_len);
      weight_elems += gd.weights.size();
    }
  }
  EXPECT_EQ(weight_elems, static_cast<size_t>(g.total_weight_elems()));
}

TEST(Codegen, WeightsCanBeOmitted) {
  nn::Graph g = small_net();
  config::ArchConfig cfg = config::ArchConfig::tiny();
  CompileOptions opts;
  opts.include_weights = false;
  isa::Program p = compile(g, cfg, opts);
  for (const isa::CoreProgram& cp : p.cores) {
    for (const isa::GroupDef& gd : cp.groups) EXPECT_TRUE(gd.weights.empty());
  }
}

TEST(Codegen, FusionChangesGeneratedCodeNotSemantics) {
  nn::Graph g = small_net();
  config::ArchConfig cfg = config::ArchConfig::tiny();
  CompileOptions fused, unfused;
  unfused.fuse_relu = false;
  CompileReport rf, ru;
  isa::Program pf = compile(g, cfg, fused, &rf);
  isa::Program pu = compile(g, cfg, unfused, &ru);
  EXPECT_NE(pf, pu);
  // Unfused keeps standalone i8 VRELU instructions; fused applies VRELU on
  // the int32 accumulator inside the aggregation.
  auto count_i8_relu = [](const isa::Program& p) {
    size_t n = 0;
    for (const auto& cp : p.cores) {
      for (const auto& in : cp.code) {
        if (in.op == isa::Opcode::VRELU && in.dtype == isa::DType::I8) ++n;
      }
    }
    return n;
  };
  EXPECT_EQ(count_i8_relu(pf), 0u);
  EXPECT_GT(count_i8_relu(pu), 0u);
}

TEST(Codegen, EveryUsedCoreEndsWithHalt) {
  nn::Graph g = small_net();
  config::ArchConfig cfg = config::ArchConfig::tiny();
  isa::Program p = compile(g, cfg, {});
  size_t used = 0;
  for (const isa::CoreProgram& cp : p.cores) {
    if (cp.code.empty()) continue;
    ++used;
    EXPECT_EQ(cp.code.back().op, isa::Opcode::HALT);
  }
  EXPECT_GT(used, 0u);
}

TEST(Codegen, InstructionsCarryLayerIds) {
  nn::Graph g = small_net();
  config::ArchConfig cfg = config::ArchConfig::tiny();
  isa::Program p = compile(g, cfg, {});
  size_t tagged = 0, total = 0;
  for (const isa::CoreProgram& cp : p.cores) {
    for (const isa::Instruction& in : cp.code) {
      ++total;
      if (in.layer_id >= 0) ++tagged;
    }
  }
  // Everything except the final HALTs is attributed to a layer.
  EXPECT_GE(tagged + p.cores.size(), total);
  EXPECT_GT(tagged, total / 2);
}

TEST(Codegen, ThrowsOnLocalMemoryOverflow) {
  nn::ModelOptions mopt;
  mopt.input_hw = 16;
  nn::Graph g = nn::build_tiny_cnn(mopt);
  config::ArchConfig cfg = config::ArchConfig::tiny();
  cfg.core.local_memory.size_bytes = 512;  // absurdly small
  EXPECT_THROW(compile(g, cfg, {}), std::runtime_error);
}

TEST(Codegen, ResidualNetworkCompiles) {
  // Add + downsample path (the resnet shape) on the tiny chip.
  nn::Graph g;
  int32_t x = g.add_input({4, 6, 6});
  int32_t c1 = g.add_conv(x, 8, 3, 1, 1, "c1");
  int32_t r1 = g.add_relu(c1, "r1");
  int32_t c2 = g.add_conv(r1, 8, 3, 1, 1, "c2");
  int32_t skip = g.add_conv(x, 8, 1, 1, 0, "skip");
  int32_t sum = g.add_add(c2, skip, "sum");
  g.add_relu(sum, "out");
  g.infer_shapes();
  g.init_parameters(5);
  config::ArchConfig cfg = config::ArchConfig::tiny();
  isa::Program p = compile(g, cfg, {});
  EXPECT_TRUE(p.verify(cfg).empty());
}

TEST(Codegen, ConcatNetworkCompiles) {
  nn::Graph g;
  int32_t x = g.add_input({4, 6, 6});
  int32_t a = g.add_conv(x, 4, 1, 1, 0, "a");
  int32_t b = g.add_conv(x, 6, 3, 1, 1, "b");
  int32_t cat = g.add_concat({a, b}, "cat");
  g.add_conv(cat, 4, 1, 1, 0, "post");
  g.infer_shapes();
  g.init_parameters(5);
  config::ArchConfig cfg = config::ArchConfig::tiny();
  isa::Program p = compile(g, cfg, {});
  EXPECT_TRUE(p.verify(cfg).empty());
}

TEST(Codegen, PolicyRecordedInProgram) {
  nn::Graph g = small_net();
  config::ArchConfig cfg = config::ArchConfig::tiny();
  CompileOptions opts;
  opts.policy = MappingPolicy::UtilizationFirst;
  isa::Program p = compile(g, cfg, opts);
  EXPECT_EQ(p.mapping_policy, "utilization_first");
  EXPECT_EQ(p.network_name, g.name());
}

}  // namespace
}  // namespace pim::compiler
