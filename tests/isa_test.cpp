// Unit tests for the ISA: opcode metadata, binary encoding, assembler,
// program container and structural verifier.
#include <gtest/gtest.h>

#include "config/arch_config.h"
#include "isa/assembler.h"
#include "isa/isa.h"
#include "isa/program.h"

namespace pim::isa {
namespace {

TEST(Opcode, ClassRanges) {
  EXPECT_EQ(instr_class(Opcode::MVM), InstrClass::Matrix);
  EXPECT_EQ(instr_class(Opcode::VADD), InstrClass::Vector);
  EXPECT_EQ(instr_class(Opcode::VQUANT), InstrClass::Vector);
  EXPECT_EQ(instr_class(Opcode::SEND), InstrClass::Transfer);
  EXPECT_EQ(instr_class(Opcode::GSTORE), InstrClass::Transfer);
  EXPECT_EQ(instr_class(Opcode::LDI), InstrClass::Scalar);
  EXPECT_EQ(instr_class(Opcode::HALT), InstrClass::Scalar);
}

TEST(Opcode, NameRoundTrip) {
  for (Opcode op : {Opcode::MVM, Opcode::VADD, Opcode::VSUB, Opcode::VMUL, Opcode::VMAX,
                    Opcode::VMIN, Opcode::VADDI, Opcode::VMULI, Opcode::VSHR, Opcode::VDIVI,
                    Opcode::VRELU, Opcode::VSIGMOID, Opcode::VTANH, Opcode::VMOV, Opcode::VSET,
                    Opcode::VQUANT, Opcode::VDEQUANT, Opcode::SEND, Opcode::RECV, Opcode::GLOAD,
                    Opcode::GSTORE, Opcode::LDI, Opcode::SADD, Opcode::SSUB, Opcode::SMUL,
                    Opcode::SADDI, Opcode::SAND, Opcode::SOR, Opcode::SXOR, Opcode::SSLL,
                    Opcode::SSRA, Opcode::JMP, Opcode::BEQ, Opcode::BNE, Opcode::BLT,
                    Opcode::BGE, Opcode::NOP, Opcode::HALT}) {
    EXPECT_EQ(opcode_from_name(opcode_name(op)), op);
  }
  EXPECT_THROW(opcode_from_name("bogus"), std::invalid_argument);
}

TEST(Instruction, BytesInOut) {
  Instruction mvm;
  mvm.op = Opcode::MVM;
  mvm.len = 100;
  EXPECT_EQ(mvm.bytes_in(), 100u);  // int8 input vector

  Instruction vadd;
  vadd.op = Opcode::VADD;
  vadd.dtype = DType::I32;
  vadd.len = 10;
  EXPECT_EQ(vadd.bytes_in(), 80u);   // two i32 sources
  EXPECT_EQ(vadd.bytes_out(), 40u);

  Instruction vq;
  vq.op = Opcode::VQUANT;
  vq.len = 16;
  EXPECT_EQ(vq.bytes_in(), 64u);   // i32 in
  EXPECT_EQ(vq.bytes_out(), 16u);  // i8 out

  Instruction vd;
  vd.op = Opcode::VDEQUANT;
  vd.len = 16;
  EXPECT_EQ(vd.bytes_in(), 16u);
  EXPECT_EQ(vd.bytes_out(), 64u);

  Instruction send;
  send.op = Opcode::SEND;
  send.dtype = DType::I32;
  send.len = 8;
  EXPECT_EQ(send.bytes_in(), 32u);
  EXPECT_EQ(send.bytes_out(), 0u);

  Instruction vset;
  vset.op = Opcode::VSET;
  vset.dtype = DType::I8;
  vset.len = 4;
  EXPECT_EQ(vset.bytes_in(), 0u);
  EXPECT_EQ(vset.bytes_out(), 4u);
}

// ------------------------------------------------------- encoding round-trip

Instruction mvm_instr() {
  Instruction in;
  in.op = Opcode::MVM;
  in.group = 513;
  in.dst_addr = 0xABCDE;
  in.src1_addr = 0x12345;
  in.len = 12345;
  return in;
}

TEST(Encoding, MatrixRoundTrip) {
  Instruction in = mvm_instr();
  EXPECT_EQ(decode(encode(in)), in);
}

TEST(Encoding, VectorRegFormRoundTrip) {
  Instruction in;
  in.op = Opcode::VADD;
  in.dtype = DType::I32;
  in.dst_addr = 0xFFFFC;
  in.src1_addr = 0x00004;
  in.src2_addr = 0x80000;
  in.len = 4095;
  EXPECT_EQ(decode(encode(in)), in);
}

TEST(Encoding, VectorImmFormRoundTripSignExtends) {
  Instruction in;
  in.op = Opcode::VQUANT;
  in.dtype = DType::I8;
  in.dst_addr = 0x100;
  in.src1_addr = 0x200;
  in.imm = -7;  // negative immediates survive the 20-bit field
  in.len = 64;
  EXPECT_EQ(decode(encode(in)), in);
  in.op = Opcode::VADDI;
  in.imm = 0x7FFFF;  // max positive 20-bit
  EXPECT_EQ(decode(encode(in)), in);
}

TEST(Encoding, TransferRoundTrip) {
  Instruction snd;
  snd.op = Opcode::SEND;
  snd.dtype = DType::I32;
  snd.src1_addr = 0xF00F0;
  snd.len = 65535;
  snd.core = 63;
  snd.tag = 999;
  EXPECT_EQ(decode(encode(snd)), snd);

  Instruction rcv;
  rcv.op = Opcode::RECV;
  rcv.dst_addr = 0x3C;
  rcv.len = 1;
  rcv.core = 0;
  rcv.tag = 65535;
  EXPECT_EQ(decode(encode(rcv)), rcv);

  Instruction gl;
  gl.op = Opcode::GLOAD;
  gl.dst_addr = 0x40;
  gl.imm = static_cast<int32_t>(0xDEADBEEF);
  gl.len = 4095;
  EXPECT_EQ(decode(encode(gl)), gl);

  Instruction gs;
  gs.op = Opcode::GSTORE;
  gs.src1_addr = 0x80;
  gs.imm = 0x1000;
  gs.len = 100;
  gs.dtype = DType::I8;
  EXPECT_EQ(decode(encode(gs)), gs);
}

TEST(Encoding, ScalarRoundTrip) {
  Instruction in;
  in.op = Opcode::SADDI;
  in.rd = 31;
  in.rs1 = 17;
  in.imm = -123456;
  EXPECT_EQ(decode(encode(in)), in);

  Instruction br;
  br.op = Opcode::BNE;
  br.rs1 = 1;
  br.rs2 = 2;
  br.imm = 42;
  EXPECT_EQ(decode(encode(br)), br);
}

/// Property sweep: every vector opcode round-trips with representative
/// operand patterns.
class VectorEncodingTest : public ::testing::TestWithParam<Opcode> {};

TEST_P(VectorEncodingTest, RoundTrip) {
  Instruction in;
  in.op = GetParam();
  in.dtype = DType::I32;
  in.dst_addr = 0x54320;
  in.len = 321;
  if (uses_vector_imm(in.op)) {
    in.imm = -3;
  } else {
    in.src2_addr = 0x11111;
  }
  if (in.op != Opcode::VSET) in.src1_addr = 0x22222;
  if (in.op == Opcode::VSET) in.src2_addr = 0;  // imm form carries no src2
  Instruction dec = decode(encode(in));
  if (uses_vector_imm(in.op)) {
    EXPECT_EQ(dec, in);
  } else {
    EXPECT_EQ(dec, in);
  }
}

INSTANTIATE_TEST_SUITE_P(AllVectorOps, VectorEncodingTest,
                         ::testing::Values(Opcode::VADD, Opcode::VSUB, Opcode::VMUL,
                                           Opcode::VMAX, Opcode::VMIN, Opcode::VADDI,
                                           Opcode::VMULI, Opcode::VSHR, Opcode::VDIVI,
                                           Opcode::VRELU, Opcode::VSIGMOID, Opcode::VTANH,
                                           Opcode::VMOV, Opcode::VQUANT, Opcode::VDEQUANT));

// ------------------------------------------------------------------ assembler

TEST(Assembler, RoundTripThroughDisassembly) {
  Program p;
  p.network_name = "demo";
  p.cores.resize(2);
  GroupDef g;
  g.id = 0;
  g.in_len = 32;
  g.out_len = 16;
  g.xbar_count = 1;
  g.out_shift = 9;
  p.cores[0].groups.push_back(g);

  Instruction mvm;
  mvm.op = Opcode::MVM;
  mvm.group = 0;
  mvm.dst_addr = 0x400;
  mvm.src1_addr = 0x0;
  mvm.len = 32;
  p.cores[0].code.push_back(mvm);

  Instruction vq;
  vq.op = Opcode::VQUANT;
  vq.dst_addr = 0x600;
  vq.src1_addr = 0x400;
  vq.imm = 9;
  vq.len = 16;
  p.cores[0].code.push_back(vq);

  Instruction snd;
  snd.op = Opcode::SEND;
  snd.core = 1;
  snd.tag = 0;
  snd.src1_addr = 0x600;
  snd.len = 16;
  p.cores[0].code.push_back(snd);
  Instruction halt;
  halt.op = Opcode::HALT;
  p.cores[0].code.push_back(halt);

  Instruction rcv;
  rcv.op = Opcode::RECV;
  rcv.core = 0;
  rcv.tag = 0;
  rcv.dst_addr = 0x0;
  rcv.len = 16;
  p.cores[1].code.push_back(rcv);
  p.cores[1].code.push_back(halt);

  Program back = assemble(disassemble(p));
  ASSERT_EQ(back.cores.size(), p.cores.size());
  EXPECT_EQ(back.cores[0].code, p.cores[0].code);
  EXPECT_EQ(back.cores[1].code, p.cores[1].code);
  EXPECT_EQ(back.cores[0].groups, p.cores[0].groups);
  EXPECT_EQ(back.network_name, "demo");
}

TEST(Assembler, LabelsAndBranches) {
  Program p = assemble(R"(
    .core 0
      ldi r1, 5
      ldi r2, 0
    loop:
      saddi r2, r2, 1
      bne r2, r1, loop
      halt
  )");
  ASSERT_EQ(p.cores.size(), 1u);
  ASSERT_EQ(p.cores[0].code.size(), 5u);
  EXPECT_EQ(p.cores[0].code[3].op, Opcode::BNE);
  EXPECT_EQ(p.cores[0].code[3].imm, 2);  // label 'loop' at pc 2
}

TEST(Assembler, CommentsAndBlankLines) {
  Program p = assemble("# header\n\n  nop ; trailing\n  halt\n");
  ASSERT_EQ(p.cores[0].code.size(), 2u);
  EXPECT_EQ(p.cores[0].code[0].op, Opcode::NOP);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    assemble("nop\nbogus r1\n");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
  EXPECT_THROW(assemble("jmp nowhere\nhalt"), std::invalid_argument);
  EXPECT_THROW(assemble(".group id=0"), std::invalid_argument);  // missing fields
}

// ------------------------------------------------------------------- program

Program minimal_program() {
  Program p;
  p.cores.resize(1);
  GroupDef g;
  g.id = 0;
  g.in_len = 32;
  g.out_len = 32;
  g.xbar_count = 1;
  p.cores[0].groups.push_back(g);
  Instruction mvm;
  mvm.op = Opcode::MVM;
  mvm.group = 0;
  mvm.src1_addr = 0;
  mvm.dst_addr = 0x100;
  mvm.len = 32;
  p.cores[0].code.push_back(mvm);
  Instruction halt;
  halt.op = Opcode::HALT;
  p.cores[0].code.push_back(halt);
  return p;
}

TEST(ProgramVerify, AcceptsMinimal) {
  config::ArchConfig cfg = config::ArchConfig::tiny();
  EXPECT_TRUE(minimal_program().verify(cfg).empty());
}

TEST(ProgramVerify, CatchesUndefinedGroup) {
  config::ArchConfig cfg = config::ArchConfig::tiny();
  Program p = minimal_program();
  p.cores[0].code[0].group = 7;
  auto errs = p.verify(cfg);
  ASSERT_FALSE(errs.empty());
  EXPECT_NE(errs[0].find("undefined group"), std::string::npos);
}

TEST(ProgramVerify, CatchesLenMismatch) {
  config::ArchConfig cfg = config::ArchConfig::tiny();
  Program p = minimal_program();
  p.cores[0].code[0].len = 16;  // != group in_len
  EXPECT_FALSE(p.verify(cfg).empty());
}

TEST(ProgramVerify, CatchesMissingHalt) {
  config::ArchConfig cfg = config::ArchConfig::tiny();
  Program p = minimal_program();
  p.cores[0].code.pop_back();
  EXPECT_FALSE(p.verify(cfg).empty());
}

TEST(ProgramVerify, CatchesLocalMemoryOverflow) {
  config::ArchConfig cfg = config::ArchConfig::tiny();
  Program p = minimal_program();
  Instruction mv;
  mv.op = Opcode::VMOV;
  mv.dtype = DType::I8;
  mv.dst_addr = static_cast<uint32_t>(cfg.core.local_memory.size_bytes - 4);
  mv.src1_addr = 0;
  mv.len = 64;
  p.cores[0].code.insert(p.cores[0].code.end() - 1, mv);
  auto errs = p.verify(cfg);
  ASSERT_FALSE(errs.empty());
  EXPECT_NE(errs[0].find("local memory"), std::string::npos);
}

TEST(ProgramVerify, CatchesUnmatchedSend) {
  config::ArchConfig cfg = config::ArchConfig::tiny();
  Program p = minimal_program();
  Instruction snd;
  snd.op = Opcode::SEND;
  snd.core = 1;
  snd.tag = 3;
  snd.src1_addr = 0;
  snd.len = 8;
  p.cores[0].code.insert(p.cores[0].code.end() - 1, snd);
  auto errs = p.verify(cfg);
  ASSERT_FALSE(errs.empty());
  EXPECT_NE(errs[0].find("no matching recv"), std::string::npos);
}

TEST(ProgramVerify, CatchesSendRecvByteMismatch) {
  config::ArchConfig cfg = config::ArchConfig::tiny();
  Program p = minimal_program();
  p.cores.resize(2);
  Instruction snd;
  snd.op = Opcode::SEND;
  snd.core = 1;
  snd.tag = 0;
  snd.len = 8;
  p.cores[0].code.insert(p.cores[0].code.end() - 1, snd);
  Instruction rcv;
  rcv.op = Opcode::RECV;
  rcv.core = 0;
  rcv.tag = 0;
  rcv.len = 16;  // mismatched byte count
  p.cores[1].code.push_back(rcv);
  Instruction halt;
  halt.op = Opcode::HALT;
  p.cores[1].code.push_back(halt);
  auto errs = p.verify(cfg);
  ASSERT_FALSE(errs.empty());
}

TEST(ProgramVerify, CatchesBranchOutOfRange) {
  config::ArchConfig cfg = config::ArchConfig::tiny();
  Program p = minimal_program();
  Instruction jmp;
  jmp.op = Opcode::JMP;
  jmp.imm = 100;
  p.cores[0].code.insert(p.cores[0].code.end() - 1, jmp);
  EXPECT_FALSE(p.verify(cfg).empty());
}

TEST(ProgramVerify, CatchesTooManyXbars) {
  config::ArchConfig cfg = config::ArchConfig::tiny();
  Program p = minimal_program();
  p.cores[0].groups[0].xbar_count = cfg.core.matrix.xbar_count + 1;
  EXPECT_FALSE(p.verify(cfg).empty());
}

TEST(ProgramJson, RoundTripWithWeightsAndSegments) {
  Program p = minimal_program();
  p.network_name = "net";
  p.mapping_policy = "performance_first";
  p.cores[0].groups[0].weights.assign(32 * 32, int8_t{-3});
  isa::DataSegment seg;
  seg.addr = 0x40;
  seg.bytes = {1, 2, 3, 255};
  p.cores[0].lm_init.push_back(seg);
  Program back = Program::from_json(p.to_json());
  EXPECT_EQ(back, p);
}

TEST(ProgramJson, WeightsCanBeStripped) {
  Program p = minimal_program();
  p.cores[0].groups[0].weights.assign(32 * 32, int8_t{1});
  Program back = Program::from_json(p.to_json(/*include_weights=*/false));
  EXPECT_TRUE(back.cores[0].groups[0].weights.empty());
  EXPECT_EQ(back.cores[0].code, p.cores[0].code);
}

TEST(Program, Counters) {
  Program p = minimal_program();
  EXPECT_EQ(p.total_instructions(), 2u);
  EXPECT_EQ(p.total_groups(), 1u);
  EXPECT_EQ(p.cores[0].xbars_used(), 1u);
  EXPECT_NE(p.cores[0].find_group(0), nullptr);
  EXPECT_EQ(p.cores[0].find_group(9), nullptr);
}

TEST(Disassembly, StableStrings) {
  EXPECT_EQ(to_string(mvm_instr()), "mvm g513, 0xabcde, 0x12345, len=12345");
  Instruction h;
  h.op = Opcode::HALT;
  EXPECT_EQ(to_string(h), "halt");
  Instruction s;
  s.op = Opcode::SEND;
  s.core = 3;
  s.tag = 7;
  s.src1_addr = 0x200;
  s.len = 64;
  EXPECT_EQ(to_string(s), "send core=3, tag=7, 0x200, len=64, i8");
}

}  // namespace
}  // namespace pim::isa
