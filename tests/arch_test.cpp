// Unit tests for the cycle-accurate architecture model: NoC routing and
// contention, core execution of hand-written ISA programs (all four units),
// hazards, rendezvous transfers, global memory, deadlock detection.
#include <gtest/gtest.h>

#include <cstring>

#include "arch/chip.h"
#include "config/arch_config.h"
#include "isa/assembler.h"

namespace pim::arch {
namespace {

using isa::DType;
using isa::Instruction;
using isa::Opcode;
using isa::Program;

config::ArchConfig tiny_cfg() {
  config::ArchConfig cfg = config::ArchConfig::tiny();
  cfg.sim.functional = true;
  return cfg;
}

Instruction make(Opcode op) {
  Instruction in;
  in.op = op;
  return in;
}

Program empty_program(size_t cores) {
  Program p;
  p.cores.resize(cores);
  return p;
}

void push_halt(Program& p, size_t core) { p.cores[core].code.push_back(make(Opcode::HALT)); }

// -------------------------------------------------------------------- NoC

TEST(Noc, XyRouteLengths) {
  config::ArchConfig cfg = tiny_cfg();  // 2x2 mesh
  sim::Kernel k;
  EnergyMeter e;
  Noc noc(k, cfg, e);
  EXPECT_EQ(noc.route(0, 0).size(), 0u);
  EXPECT_EQ(noc.route(0, 1).size(), 1u);  // one hop east
  EXPECT_EQ(noc.route(0, 3).size(), 2u);  // east then south
  EXPECT_EQ(noc.route(3, 0).size(), 2u);
  EXPECT_EQ(noc.hop_count(0, 3), 2u);
  EXPECT_EQ(noc.hop_count(1, 2), 2u);
}

TEST(Noc, GlobalMemoryPortRoutesThroughRouter0) {
  config::ArchConfig cfg = tiny_cfg();
  sim::Kernel k;
  EnergyMeter e;
  Noc noc(k, cfg, e);
  EXPECT_EQ(noc.route(Noc::kGlobalMemNode, 0).size(), 1u);  // just the memory link
  EXPECT_EQ(noc.route(Noc::kGlobalMemNode, 3).size(), 3u);
  EXPECT_EQ(noc.hop_count(3, Noc::kGlobalMemNode), 3u);
}

TEST(Noc, ChargeAccountsEnergyAndBytes) {
  config::ArchConfig cfg = tiny_cfg();
  sim::Kernel k;
  EnergyMeter e;
  Noc noc(k, cfg, e);
  noc.charge(100, 3);
  EXPECT_EQ(noc.total_byte_hops(), 300u);
  EXPECT_DOUBLE_EQ(e.get(Component::Noc), cfg.noc.energy_pj_per_byte_hop * 300.0);
}

// ----------------------------------------------------------------- scalar

TEST(Core, ScalarLoopComputesSum) {
  // sum = 1 + 2 + ... + 10, left in r3; verified via the register-visible
  // side effect of a store... registers are internal, so expose the result
  // as a GSTORE of a vector initialized via VSET+VADDI chain instead.
  // Simpler: compute via scalar loop, then use r-value-independent check:
  // the loop must retire the right number of instructions.
  Program p = empty_program(1);
  p.cores[0].code = isa::assemble(R"(
      ldi r1, 10
      ldi r2, 0
      ldi r3, 0
    loop:
      saddi r2, r2, 1
      sadd r3, r3, r2
      bne r2, r1, loop
      halt
  )").cores[0].code;
  config::ArchConfig cfg = tiny_cfg();
  Chip chip(cfg, p);
  RunStats stats = chip.run();
  EXPECT_TRUE(chip.finished());
  // 3 ldi + 10 iterations x 3 + halt = 34 retired instructions.
  EXPECT_EQ(stats.cores[0].instructions_retired, 34u);
}

TEST(Core, TakenAndNotTakenBranches) {
  Program p = empty_program(1);
  p.cores[0].code = isa::assemble(R"(
      ldi r1, 1
      beq r1, r0, skip   # not taken
      saddi r2, r2, 1
    skip:
      jmp end
      saddi r2, r2, 100  # skipped
    end:
      halt
  )").cores[0].code;
  Chip chip(tiny_cfg(), p);
  RunStats stats = chip.run();
  EXPECT_TRUE(chip.finished());
  EXPECT_EQ(stats.cores[0].instructions_retired, 5u);  // ldi,beq,saddi,jmp,halt
}

// ----------------------------------------------------------------- vector

/// Runs a single-core program with `pre` preloaded into local memory and
/// returns the local memory after completion.
std::vector<uint8_t> run_single_core(const std::vector<Instruction>& code,
                                     const std::vector<isa::DataSegment>& segs = {},
                                     config::ArchConfig cfg = tiny_cfg(),
                                     sim::Time* latency = nullptr) {
  Program p = empty_program(1);
  p.cores[0].code = code;
  p.cores[0].code.push_back(make(Opcode::HALT));
  p.cores[0].lm_init = segs;
  Chip chip(cfg, p);
  RunStats stats = chip.run();
  EXPECT_TRUE(chip.finished());
  if (latency != nullptr) *latency = stats.total_ps;
  return chip.core(0).lm();
}

isa::DataSegment seg_i32(uint32_t addr, std::vector<int32_t> vals) {
  isa::DataSegment s;
  s.addr = addr;
  s.bytes.resize(vals.size() * 4);
  std::memcpy(s.bytes.data(), vals.data(), s.bytes.size());
  return s;
}

std::vector<int32_t> read_i32(const std::vector<uint8_t>& lm, uint32_t addr, size_t n) {
  std::vector<int32_t> out(n);
  std::memcpy(out.data(), lm.data() + addr, n * 4);
  return out;
}

TEST(VectorUnit, AddI32) {
  Instruction add = make(Opcode::VADD);
  add.dtype = DType::I32;
  add.dst_addr = 0x200;
  add.src1_addr = 0x0;
  add.src2_addr = 0x100;
  add.len = 4;
  auto lm = run_single_core({add}, {seg_i32(0x0, {1, -2, 3, 1000000}),
                                    seg_i32(0x100, {10, 20, -30, 1000000})});
  EXPECT_EQ(read_i32(lm, 0x200, 4), (std::vector<int32_t>{11, 18, -27, 2000000}));
}

TEST(VectorUnit, AddI8Saturates) {
  isa::DataSegment a;
  a.addr = 0;
  a.bytes = {100, 200 /* -56 */, 127};
  isa::DataSegment b;
  b.addr = 0x40;
  b.bytes = {100, 200, 1};
  Instruction add = make(Opcode::VADD);
  add.dtype = DType::I8;
  add.dst_addr = 0x80;
  add.src1_addr = 0;
  add.src2_addr = 0x40;
  add.len = 3;
  auto lm = run_single_core({add}, {a, b});
  EXPECT_EQ(static_cast<int8_t>(lm[0x80]), 127);    // 100+100 saturates
  EXPECT_EQ(static_cast<int8_t>(lm[0x81]), -112);   // -56 + -56
  EXPECT_EQ(static_cast<int8_t>(lm[0x82]), 127);    // 127+1 saturates
}

TEST(VectorUnit, QuantDequantRoundTrip) {
  Instruction vq = make(Opcode::VQUANT);
  vq.dst_addr = 0x100;
  vq.src1_addr = 0x0;
  vq.imm = 4;
  vq.len = 4;
  Instruction vd = make(Opcode::VDEQUANT);
  vd.dst_addr = 0x140;
  vd.src1_addr = 0x100;
  vd.len = 4;
  auto lm = run_single_core({vq, vd}, {seg_i32(0x0, {160, -160, 8, 100000})});
  // 160>>4=10, -160>>4=-10, 8>>4 rounds to 1 (0.5 away from zero), 100000>>4 sat 127
  EXPECT_EQ(read_i32(lm, 0x140, 4), (std::vector<int32_t>{10, -10, 1, 127}));
}

TEST(VectorUnit, ReluShrDivi) {
  Instruction relu = make(Opcode::VRELU);
  relu.dtype = DType::I32;
  relu.dst_addr = 0x100;
  relu.src1_addr = 0;
  relu.len = 3;
  Instruction shr = make(Opcode::VSHR);
  shr.dtype = DType::I32;
  shr.dst_addr = 0x200;
  shr.src1_addr = 0;
  shr.imm = 1;
  shr.len = 3;
  Instruction divi = make(Opcode::VDIVI);
  divi.dtype = DType::I32;
  divi.dst_addr = 0x300;
  divi.src1_addr = 0;
  divi.imm = 4;
  divi.len = 3;
  auto lm = run_single_core({relu, shr, divi}, {seg_i32(0, {-8, 0, 9})});
  EXPECT_EQ(read_i32(lm, 0x100, 3), (std::vector<int32_t>{0, 0, 9}));
  EXPECT_EQ(read_i32(lm, 0x200, 3), (std::vector<int32_t>{-4, 0, 5}));  // rounded
  EXPECT_EQ(read_i32(lm, 0x300, 3), (std::vector<int32_t>{-1, 0, 2}));  // (x+2)/4 trunc
}

TEST(VectorUnit, SetMovMaxMin) {
  Instruction vset = make(Opcode::VSET);
  vset.dtype = DType::I32;
  vset.dst_addr = 0x0;
  vset.imm = 7;
  vset.len = 4;
  Instruction vmov = make(Opcode::VMOV);
  vmov.dtype = DType::I32;
  vmov.dst_addr = 0x100;
  vmov.src1_addr = 0x0;
  vmov.len = 4;
  Instruction vmax = make(Opcode::VMAX);
  vmax.dtype = DType::I32;
  vmax.dst_addr = 0x200;
  vmax.src1_addr = 0x100;
  vmax.src2_addr = 0x300;
  vmax.len = 4;
  Instruction vmin = make(Opcode::VMIN);
  vmin.dtype = DType::I32;
  vmin.dst_addr = 0x240;
  vmin.src1_addr = 0x100;
  vmin.src2_addr = 0x300;
  vmin.len = 4;
  auto lm = run_single_core({vset, vmov, vmax, vmin}, {seg_i32(0x300, {1, 9, 7, -1})});
  EXPECT_EQ(read_i32(lm, 0x100, 4), (std::vector<int32_t>{7, 7, 7, 7}));
  EXPECT_EQ(read_i32(lm, 0x200, 4), (std::vector<int32_t>{7, 9, 7, 7}));
  EXPECT_EQ(read_i32(lm, 0x240, 4), (std::vector<int32_t>{1, 7, 7, -1}));
}

// ------------------------------------------------------------------ matrix

TEST(MatrixUnit, MvmComputesGroupGemv) {
  Program p = empty_program(1);
  isa::GroupDef g;
  g.id = 0;
  g.in_len = 3;
  g.out_len = 2;
  g.xbar_count = 1;
  // W row-major [in][out]: rows {1,2},{3,4},{5,6}
  g.weights = {1, 2, 3, 4, 5, 6};
  p.cores[0].groups.push_back(g);
  isa::DataSegment in;
  in.addr = 0;
  in.bytes = {1, 0xFF /* -1 */, 2};
  p.cores[0].lm_init.push_back(in);
  Instruction mvm = make(Opcode::MVM);
  mvm.group = 0;
  mvm.src1_addr = 0;
  mvm.dst_addr = 0x100;
  mvm.len = 3;
  p.cores[0].code.push_back(mvm);
  push_halt(p, 0);
  Chip chip(tiny_cfg(), p);
  chip.run();
  EXPECT_TRUE(chip.finished());
  // out = [1*1 -1*3 + 2*5, 1*2 -1*4 + 2*6] = [8, 10]
  auto lm = chip.core(0).lm();
  int32_t out[2];
  std::memcpy(out, lm.data() + 0x100, 8);
  EXPECT_EQ(out[0], 8);
  EXPECT_EQ(out[1], 10);
  EXPECT_EQ(chip.stats().cores[0].matrix.ops, 1u);
  EXPECT_GT(chip.stats().energy.get(Component::Xbar), 0.0);
  EXPECT_GT(chip.stats().energy.get(Component::Adc), 0.0);
}

TEST(MatrixUnit, SameGroupSerializesDifferentGroupsOverlap) {
  auto build = [](bool same_group) {
    Program p = empty_program(1);
    for (uint16_t gid = 0; gid < 2; ++gid) {
      isa::GroupDef g;
      g.id = gid;
      g.in_len = 16;
      g.out_len = 16;
      g.xbar_count = 1;
      p.cores[0].groups.push_back(g);
    }
    for (int i = 0; i < 2; ++i) {
      Instruction mvm = make(Opcode::MVM);
      mvm.group = same_group ? 0 : static_cast<uint16_t>(i);
      mvm.src1_addr = 0;
      mvm.dst_addr = 0x100 + 0x100 * static_cast<uint32_t>(i);
      mvm.len = 16;
      p.cores[0].code.push_back(mvm);
    }
    push_halt(p, 0);
    return p;
  };
  config::ArchConfig cfg = tiny_cfg();
  cfg.core.rob_size = 8;
  Program same = build(true), diff = build(false);
  Chip c1(cfg, same), c2(cfg, diff);
  const sim::Time t_same = c1.run().total_ps;
  const sim::Time t_diff = c2.run().total_ps;
  // The structure hazard (paper Fig. 4): same group is markedly slower.
  EXPECT_GT(t_same, t_diff + t_diff / 2);
}

TEST(MatrixUnit, AdcSharingSerializes) {
  auto run_with_adc = [](uint32_t adcs) {
    config::ArchConfig cfg = tiny_cfg();
    cfg.core.matrix.adc_count = adcs;
    cfg.core.rob_size = 8;
    Program p = empty_program(1);
    for (uint16_t gid = 0; gid < 4; ++gid) {
      isa::GroupDef g;
      g.id = gid;
      g.in_len = 32;
      g.out_len = 32;
      g.xbar_count = 1;
      p.cores[0].groups.push_back(g);
      Instruction mvm = make(Opcode::MVM);
      mvm.group = gid;
      mvm.src1_addr = 0;
      mvm.dst_addr = 0x100 + 0x100 * gid;
      mvm.len = 32;
      p.cores[0].code.push_back(mvm);
    }
    push_halt(p, 0);
    Chip chip(cfg, p);
    return chip.run().total_ps;
  };
  EXPECT_GT(run_with_adc(1), run_with_adc(4));
}

// ---------------------------------------------------------------- transfer

TEST(Transfer, SendRecvMovesDataAcrossCores) {
  Program p = empty_program(4);
  isa::DataSegment seg;
  seg.addr = 0;
  seg.bytes = {1, 2, 3, 4, 5, 6, 7, 8};
  p.cores[0].lm_init.push_back(seg);
  Instruction snd = make(Opcode::SEND);
  snd.core = 3;
  snd.tag = 0;
  snd.src1_addr = 0;
  snd.len = 8;
  p.cores[0].code.push_back(snd);
  push_halt(p, 0);
  Instruction rcv = make(Opcode::RECV);
  rcv.core = 0;
  rcv.tag = 0;
  rcv.dst_addr = 0x40;
  rcv.len = 8;
  p.cores[3].code.push_back(rcv);
  push_halt(p, 3);
  Chip chip(tiny_cfg(), p);
  RunStats stats = chip.run();
  EXPECT_TRUE(chip.finished());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(chip.core(3).lm()[0x40 + static_cast<size_t>(i)], static_cast<uint8_t>(i + 1));
  }
  EXPECT_EQ(stats.cores[0].bytes_sent, 8u);
  EXPECT_EQ(stats.cores[3].bytes_received, 8u);
  EXPECT_GT(stats.energy.get(Component::Noc), 0.0);
}

TEST(Transfer, RendezvousBlocksSenderUntilRecvPosted) {
  // Receiver delays its RECV with a long scalar spin; SEND must wait.
  Program p = empty_program(4);
  Instruction snd = make(Opcode::SEND);
  snd.core = 1;
  snd.tag = 0;
  snd.src1_addr = 0;
  snd.len = 4;
  p.cores[0].code.push_back(snd);
  push_halt(p, 0);
  auto spin = isa::assemble(R"(
      ldi r1, 2000
      ldi r2, 0
    loop:
      saddi r2, r2, 1
      bne r2, r1, loop
  )").cores[0].code;
  p.cores[1].code = spin;
  Instruction rcv = make(Opcode::RECV);
  rcv.core = 0;
  rcv.tag = 0;
  rcv.dst_addr = 0x40;
  rcv.len = 4;
  p.cores[1].code.push_back(rcv);
  push_halt(p, 1);
  config::ArchConfig cfg = tiny_cfg();
  Chip chip(cfg, p);
  RunStats stats = chip.run();
  EXPECT_TRUE(chip.finished());
  // Core 0 halts only after the rendezvous completes -> after the spin.
  const sim::Time spin_time =
      static_cast<sim::Time>(2000 * 2) * 1000;  // ~2 instr/iter, 1ns cycle
  EXPECT_GT(stats.cores[0].halt_time_ps, spin_time / 2);
}

TEST(Transfer, MismatchedRecvDeadlocksAndIsReported) {
  Program p = empty_program(4);
  Instruction rcv = make(Opcode::RECV);
  rcv.core = 2;
  rcv.tag = 0;
  rcv.dst_addr = 0;
  rcv.len = 4;
  p.cores[1].code.push_back(rcv);
  push_halt(p, 1);
  // NOTE: verify() would flag this program; bypass it by building the chip
  // with a matching-but-never-executed send... instead use max_time budget.
  Instruction snd = make(Opcode::SEND);
  snd.core = 1;
  snd.tag = 0;
  snd.src1_addr = 0;
  snd.len = 4;
  // Put the matching SEND after an infinite-ish spin so it never fires
  // within the budget.
  auto spin = isa::assemble(R"(
      ldi r1, 1000000
      ldi r2, 0
    loop:
      saddi r2, r2, 1
      bne r2, r1, loop
  )").cores[0].code;
  p.cores[2].code = spin;
  p.cores[2].code.push_back(snd);
  push_halt(p, 2);
  config::ArchConfig cfg = tiny_cfg();
  cfg.sim.max_time_ps = 1'000'000'000;  // 1 ms budget
  Chip chip(cfg, p);
  chip.run();
  EXPECT_FALSE(chip.finished());
}

TEST(Transfer, GloadGstoreRoundTripThroughGlobalMemory) {
  Program p = empty_program(4);
  Instruction gl = make(Opcode::GLOAD);
  gl.dst_addr = 0x0;
  gl.imm = 0x1000;
  gl.len = 16;
  Instruction gs = make(Opcode::GSTORE);
  gs.src1_addr = 0x0;
  gs.imm = 0x2000;
  gs.len = 16;
  p.cores[2].code = {gl, gs};
  push_halt(p, 2);
  Chip chip(tiny_cfg(), p);
  std::vector<uint8_t> input(16);
  for (size_t i = 0; i < 16; ++i) input[i] = static_cast<uint8_t>(0xA0 + i);
  chip.write_global(0x1000, input);
  chip.run();
  EXPECT_TRUE(chip.finished());
  EXPECT_EQ(chip.read_global(0x2000, 16), input);
  EXPECT_GT(chip.stats().energy.get(Component::GlobalMemory), 0.0);
}

// ------------------------------------------------------------------ hazards

TEST(Hazards, RawChainPreservesFunctionalOrder) {
  // v[0x100] = set(3); v[0x200] = v[0x100] + v[0x100]  -> 6, even with a
  // large ROB that would otherwise reorder.
  Instruction vset = make(Opcode::VSET);
  vset.dtype = DType::I32;
  vset.dst_addr = 0x100;
  vset.imm = 3;
  vset.len = 4;
  Instruction vadd = make(Opcode::VADD);
  vadd.dtype = DType::I32;
  vadd.dst_addr = 0x200;
  vadd.src1_addr = 0x100;
  vadd.src2_addr = 0x100;
  vadd.len = 4;
  config::ArchConfig cfg = tiny_cfg();
  cfg.core.rob_size = 8;
  auto lm = run_single_core({vset, vadd}, {}, cfg);
  EXPECT_EQ(read_i32(lm, 0x200, 4), (std::vector<int32_t>{6, 6, 6, 6}));
}

TEST(Hazards, WawKeepsLastWriter) {
  Instruction s1 = make(Opcode::VSET);
  s1.dtype = DType::I32;
  s1.dst_addr = 0x100;
  s1.imm = 1;
  s1.len = 2;
  Instruction s2 = s1;
  s2.imm = 2;
  config::ArchConfig cfg = tiny_cfg();
  cfg.core.rob_size = 8;
  auto lm = run_single_core({s1, s2}, {}, cfg);
  EXPECT_EQ(read_i32(lm, 0x100, 2), (std::vector<int32_t>{2, 2}));
}

TEST(Hazards, RobSizeOneStillCorrect) {
  config::ArchConfig cfg = tiny_cfg();
  cfg.core.rob_size = 1;
  Instruction vset = make(Opcode::VSET);
  vset.dtype = DType::I32;
  vset.dst_addr = 0x0;
  vset.imm = 5;
  vset.len = 8;
  Instruction vmul = make(Opcode::VMULI);
  vmul.dtype = DType::I32;
  vmul.dst_addr = 0x100;
  vmul.src1_addr = 0x0;
  vmul.imm = 3;
  vmul.len = 8;
  auto lm = run_single_core({vset, vmul}, {}, cfg);
  EXPECT_EQ(read_i32(lm, 0x100, 8), std::vector<int32_t>(8, 15));
}

TEST(Hazards, LargerRobReducesLatencyForIndependentWork) {
  auto run_with_rob = [](uint32_t rob) {
    config::ArchConfig cfg = tiny_cfg();
    cfg.core.rob_size = rob;
    std::vector<Instruction> code;
    // 8 independent (MVM, quant) pairs on different groups/addresses.
    Program p = empty_program(1);
    for (uint16_t i = 0; i < 8; ++i) {
      isa::GroupDef g;
      g.id = i;
      g.in_len = 32;
      g.out_len = 32;
      g.xbar_count = 1;
      p.cores[0].groups.push_back(g);
      Instruction mvm = make(Opcode::MVM);
      mvm.group = i;
      mvm.src1_addr = 0;
      mvm.dst_addr = 0x1000 + 0x100u * i;
      mvm.len = 32;
      p.cores[0].code.push_back(mvm);
    }
    push_halt(p, 0);
    Chip chip(cfg, p);
    return chip.run().total_ps;
  };
  const sim::Time t1 = run_with_rob(1);
  const sim::Time t8 = run_with_rob(8);
  EXPECT_GT(t1, t8 * 3);  // near-linear overlap on independent groups
}

TEST(Stats, RobFullStallsCounted) {
  config::ArchConfig cfg = tiny_cfg();
  cfg.core.rob_size = 1;
  Program p = empty_program(1);
  std::vector<Instruction> code;
  for (int i = 0; i < 4; ++i) {
    Instruction vset = make(Opcode::VSET);
    vset.dtype = DType::I32;
    vset.dst_addr = 0x100u * static_cast<uint32_t>(i);
    vset.imm = i;
    vset.len = 16;
    code.push_back(vset);
  }
  sim::Time latency = 0;
  run_single_core(code, {}, cfg, &latency);
  // With ROB=1 dispatch must stall; just assert the run completed with the
  // expected serialized latency ordering vs a larger ROB.
  config::ArchConfig cfg8 = tiny_cfg();
  cfg8.core.rob_size = 8;
  sim::Time latency8 = 0;
  run_single_core(code, {}, cfg8, &latency8);
  EXPECT_GE(latency, latency8);
}

TEST(Chip, RunTwiceThrows) {
  Program p = empty_program(1);
  push_halt(p, 0);
  Chip chip(tiny_cfg(), p);
  chip.run();
  EXPECT_THROW(chip.run(), std::logic_error);
}

TEST(Chip, InvalidProgramRejectedAtConstruction) {
  Program p = empty_program(1);
  Instruction mvm = make(Opcode::MVM);
  mvm.group = 9;  // undefined
  mvm.len = 4;
  p.cores[0].code.push_back(mvm);
  push_halt(p, 0);
  EXPECT_THROW(Chip(tiny_cfg(), p), std::invalid_argument);
}

TEST(Chip, StaticEnergyScalesWithTime) {
  Program p = empty_program(1);
  p.cores[0].code = isa::assemble(R"(
      ldi r1, 100
      ldi r2, 0
    loop:
      saddi r2, r2, 1
      bne r2, r1, loop
      halt
  )").cores[0].code;
  Chip chip(tiny_cfg(), p);
  RunStats stats = chip.run();
  EXPECT_GT(stats.energy.get(Component::Static), 0.0);
  EXPECT_NEAR(stats.energy.get(Component::Static),
              chip.static_power_mw() * static_cast<double>(stats.total_ps) * 1e-3,
              stats.energy.get(Component::Static) * 1e-9);
}

}  // namespace
}  // namespace pim::arch
